//! Delta encoding: greedy hash-chain matching against the base.
//!
//! The encoder indexes the base buffer at `seed_step`-aligned positions
//! with a cheap 64-bit block hash over `SEED_LEN` bytes, then scans the
//! target greedily: at each position it probes the index, extends every
//! candidate match in both directions (eight bytes at a time), and
//! emits the best one as a COPY if it clears the minimum-match
//! threshold. Compression levels 0–9 mirror Xdelta3's knob:
//!
//! | level | seed step | chain probes | effect |
//! |-------|-----------|--------------|--------|
//! | 0     | —         | —            | store (single ADD) |
//! | 1     | 16        | 4            | fast, what Medes uses |
//! | 5     | 8         | 16           | |
//! | 9     | 4         | 64           | smallest patches |
//!
//! Batch callers (the dedup scan encodes one patch per candidate page)
//! should hold an [`EncodeScratch`] and call [`encode_with`]: the index
//! arenas and the literal buffer are then reused across pages instead
//! of being reallocated per call. [`encode`] is the convenience
//! one-shot form. [`encode_reference`] preserves the original
//! `HashMap`-based implementation as the comparator the fast path is
//! verified against (property tests and the `--microbench` baseline);
//! both produce bit-identical patches.

use crate::format::{Instr, Patch};
use medes_hash::fnv::fnv1a;
use std::collections::HashMap;

/// Bytes hashed to seed a match.
const SEED_LEN: usize = 16;
/// Minimum profitable COPY length (COPY costs ~1+2·varint ≈ 7 bytes max
/// for 4 KiB pages, so 8 is the break-even point with margin).
const MIN_MATCH: usize = 8;

/// Encoder tuning derived from a compression level.
#[derive(Debug, Clone, Copy)]
pub struct EncodeConfig {
    /// Distance between indexed base positions.
    pub seed_step: usize,
    /// How many index candidates to try per target position.
    pub max_probes: usize,
    /// Level 0 disables matching entirely.
    pub store_only: bool,
}

impl EncodeConfig {
    /// Maps an Xdelta3-style level (0–9, clamped) to tuning parameters.
    pub fn with_level(level: u8) -> Self {
        let level = level.min(9);
        if level == 0 {
            return EncodeConfig {
                seed_step: 0,
                max_probes: 0,
                store_only: true,
            };
        }
        // Level 1 -> step 16, probes 4; level 9 -> step 4, probes 64,
        // exactly the module doc table. (An earlier shift-based formula
        // gave level 9 128 probes and level 5 64, contradicting the
        // documented knob.)
        let (seed_step, max_probes) = match level {
            1..=2 => (16, 4),
            3..=5 => (8, 16),
            _ => (4, 64),
        };
        EncodeConfig {
            seed_step,
            max_probes,
            store_only: false,
        }
    }
}

impl Default for EncodeConfig {
    fn default() -> Self {
        EncodeConfig::with_level(1)
    }
}

fn seed_hash(data: &[u8]) -> u64 {
    fnv1a(&data[..SEED_LEN])
}

/// Reusable encoder workspace: the base hash index (flat chained
/// buckets) plus the literal-accumulation buffer. Holding one of these
/// per worker and calling [`encode_with`] amortizes every allocation
/// the encoder makes across pages; a fresh scratch is equivalent to
/// (and used by) plain [`encode`].
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Bucket heads: 1-based entry index of the newest entry, 0 = empty.
    heads: Vec<u32>,
    /// Per-entry link to the next-older entry in the same bucket.
    links: Vec<u32>,
    /// Per-entry full 64-bit seed hash. Chains are per *bucket*, so a
    /// probe must skip entries whose key differs — without counting
    /// them against `max_probes`, exactly as the reference `HashMap`
    /// (which only ever yields exact-key candidates) behaves.
    keys: Vec<u64>,
    /// Per-entry base position.
    positions: Vec<u32>,
    /// Right-shift mapping a mixed hash to a bucket index.
    bucket_shift: u32,
    /// Pending-literal arena loaned to the patch builder.
    pending_add: Vec<u8>,
}

impl EncodeScratch {
    /// Creates an empty scratch (allocates lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)builds the index over `base` at `seed_step` positions.
    fn build_index(&mut self, base: &[u8], seed_step: usize) {
        let n_entries = (base.len() - SEED_LEN) / seed_step + 1;
        let buckets = (n_entries * 2).next_power_of_two().max(16);
        self.bucket_shift = 64 - buckets.trailing_zeros();
        self.heads.clear();
        self.heads.resize(buckets, 0);
        self.links.clear();
        self.keys.clear();
        self.positions.clear();
        let mut pos = 0usize;
        while pos + SEED_LEN <= base.len() {
            let h = seed_hash(&base[pos..]);
            let b = self.bucket(h);
            // Prepend: heads always point at the newest entry, so a
            // chain walk visits positions newest-first like the
            // reference's `cands.iter().rev()`.
            self.links.push(self.heads[b]);
            self.heads[b] = self.links.len() as u32;
            self.keys.push(h);
            self.positions.push(pos as u32);
            pos += seed_step;
        }
    }

    /// Fibonacci-hash bucket of a seed hash.
    #[inline]
    fn bucket(&self, h: u64) -> usize {
        (h.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.bucket_shift) as usize
    }
}

/// Length of the longest common prefix of `a` and `b`, eight bytes at
/// a time.
#[inline]
fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    let n = a.len().min(b.len());
    let mut i = 0usize;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let d = x ^ y;
        if d != 0 {
            return i + (d.trailing_zeros() >> 3) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

/// Length of the longest common suffix of `a` and `b`, capped at
/// `cap`, eight bytes at a time.
#[inline]
fn common_suffix_len(a: &[u8], b: &[u8], cap: usize) -> usize {
    let n = cap.min(a.len()).min(b.len());
    let (la, lb) = (a.len(), b.len());
    let mut i = 0usize;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[la - i - 8..la - i].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(b[lb - i - 8..lb - i].try_into().expect("8 bytes"));
        let d = x ^ y;
        if d != 0 {
            // The byte nearest the suffix end is the most significant
            // one under little-endian loads of a trailing window.
            return i + (d.leading_zeros() >> 3) as usize;
        }
        i += 8;
    }
    while i < n && a[la - i - 1] == b[lb - i - 1] {
        i += 1;
    }
    i
}

/// Computes a patch reconstructing `target` from `base`.
pub fn encode(base: &[u8], target: &[u8], cfg: &EncodeConfig) -> Patch {
    encode_with(base, target, cfg, &mut EncodeScratch::new())
}

/// [`encode`] with a caller-held [`EncodeScratch`]: identical output,
/// no per-call index/arena allocations once the scratch is warm.
pub fn encode_with(
    base: &[u8],
    target: &[u8],
    cfg: &EncodeConfig,
    scratch: &mut EncodeScratch,
) -> Patch {
    let mut patch = Patch {
        base_len: base.len() as u32,
        target_len: target.len() as u32,
        instrs: Vec::new(),
    };
    if target.is_empty() {
        return patch;
    }
    if cfg.store_only || base.len() < SEED_LEN || target.len() < SEED_LEN {
        patch.instrs.push(Instr::Add(target.to_vec()));
        return patch;
    }

    scratch.build_index(base, cfg.seed_step);
    // Loan the literal arena out of the scratch (and return it below)
    // so the builder's mutable borrow doesn't pin the whole scratch.
    let mut pending_add = std::mem::take(&mut scratch.pending_add);
    let mut out = PatchBuilder::new(&mut patch, &mut pending_add);
    let mut t = 0usize;
    while t + SEED_LEN <= target.len() {
        // (tail bytes, including any pending no-match bytes, are added
        // after the loop)
        let h = seed_hash(&target[t..]);
        let mut best: Option<(usize, usize, usize)> = None; // (b_start, t_start, len)
        let mut probes = 0usize;
        let mut entry = scratch.heads[scratch.bucket(h)];
        while entry != 0 && probes < cfg.max_probes {
            let idx = (entry - 1) as usize;
            entry = scratch.links[idx];
            if scratch.keys[idx] != h {
                continue; // different key sharing the bucket: not a probe
            }
            probes += 1;
            let b = scratch.positions[idx] as usize;
            if base[b..b + SEED_LEN] != target[t..t + SEED_LEN] {
                continue; // hash collision
            }
            // Extend forward, then backward only into bytes not yet
            // emitted.
            let len = SEED_LEN + common_prefix_len(&base[b + SEED_LEN..], &target[t + SEED_LEN..]);
            let back = common_suffix_len(&base[..b], &target[..t], t - out.emitted_until());
            let total = len + back;
            if best.is_none_or(|(_, _, blen)| total > blen) {
                best = Some((b - back, t - back, total));
            }
        }
        match best {
            Some((b_start, t_start, len)) if len >= MIN_MATCH => {
                out.add(&target[out.emitted_until()..t_start]);
                out.copy(b_start as u32, len as u32);
                t = t_start + len;
            }
            _ => {
                // No profitable match here; the pending literal grows.
                t += 1;
            }
        }
    }
    let tail_from = out.emitted_until();
    if tail_from < target.len() {
        out.add(&target[tail_from..]);
    }
    out.finish();
    scratch.pending_add = pending_add;
    patch
}

/// The pre-optimization encoder — fresh `HashMap` index, byte-wise
/// match extension — kept verbatim as the comparator [`encode_with`]
/// is verified against (property tests, the `hot_path` integration
/// test, and the `--microbench` baseline). Produces bit-identical
/// patches to [`encode`]/[`encode_with`].
pub fn encode_reference(base: &[u8], target: &[u8], cfg: &EncodeConfig) -> Patch {
    let mut patch = Patch {
        base_len: base.len() as u32,
        target_len: target.len() as u32,
        instrs: Vec::new(),
    };
    if target.is_empty() {
        return patch;
    }
    if cfg.store_only || base.len() < SEED_LEN || target.len() < SEED_LEN {
        patch.instrs.push(Instr::Add(target.to_vec()));
        return patch;
    }

    // Index the base: block hash -> positions (most recent first, capped).
    let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut pos = 0usize;
    while pos + SEED_LEN <= base.len() {
        index
            .entry(seed_hash(&base[pos..]))
            .or_default()
            .push(pos as u32);
        pos += cfg.seed_step;
    }

    let mut pending = Vec::new();
    let mut out = PatchBuilder::new(&mut patch, &mut pending);
    let mut t = 0usize;
    while t < target.len() {
        if t + SEED_LEN > target.len() {
            break; // tail (including any pending no-match bytes) added below
        }
        let h = seed_hash(&target[t..]);
        let mut best: Option<(usize, usize, usize)> = None; // (b_start, t_start, len)
        if let Some(cands) = index.get(&h) {
            for &cand in cands.iter().rev().take(cfg.max_probes) {
                let b = cand as usize;
                if base[b..b + SEED_LEN] != target[t..t + SEED_LEN] {
                    continue; // hash collision
                }
                // Extend forward.
                let mut len = SEED_LEN;
                while b + len < base.len()
                    && t + len < target.len()
                    && base[b + len] == target[t + len]
                {
                    len += 1;
                }
                // Extend backward only into bytes not yet emitted.
                let mut back = 0usize;
                while back < b
                    && back < t - out.emitted_until()
                    && base[b - back - 1] == target[t - back - 1]
                {
                    back += 1;
                }
                let total = len + back;
                if best.is_none_or(|(_, _, blen)| total > blen) {
                    best = Some((b - back, t - back, total));
                }
            }
        }
        match best {
            Some((b_start, t_start, len)) if len >= MIN_MATCH => {
                out.add(&target[out.emitted_until()..t_start]);
                out.copy(b_start as u32, len as u32);
                t = t_start + len;
            }
            _ => {
                // No profitable match here; the pending literal grows.
                t += 1;
            }
        }
    }
    let tail_from = out.emitted_until();
    if tail_from < target.len() {
        out.add(&target[tail_from..]);
    }
    out.finish();
    patch
}

/// Accumulates instructions, merging adjacent ADDs and coalescing
/// contiguous COPYs. The pending-literal buffer is borrowed from the
/// caller (an [`EncodeScratch`] arena) so its capacity survives
/// across encodes; flushing copies the exact bytes out instead of
/// surrendering the allocation.
struct PatchBuilder<'a> {
    patch: &'a mut Patch,
    pending_add: &'a mut Vec<u8>,
    emitted: usize,
}

impl<'a> PatchBuilder<'a> {
    fn new(patch: &'a mut Patch, pending_add: &'a mut Vec<u8>) -> Self {
        pending_add.clear();
        PatchBuilder {
            patch,
            pending_add,
            emitted: 0,
        }
    }

    /// Target bytes already covered by emitted/pending instructions.
    fn emitted_until(&self) -> usize {
        self.emitted
    }

    fn add(&mut self, data: &[u8]) {
        self.pending_add.extend_from_slice(data);
        self.emitted += data.len();
    }

    fn copy(&mut self, offset: u32, len: u32) {
        self.flush_add();
        if let Some(Instr::Copy {
            offset: po,
            len: pl,
        }) = self.patch.instrs.last_mut()
        {
            if *po + *pl == offset {
                *pl += len;
                self.emitted += len as usize;
                return;
            }
        }
        self.patch.instrs.push(Instr::Copy { offset, len });
        self.emitted += len as usize;
    }

    fn flush_add(&mut self) {
        if !self.pending_add.is_empty() {
            self.patch
                .instrs
                .push(Instr::Add(self.pending_add.as_slice().to_vec()));
            self.pending_add.clear();
        }
    }

    fn finish(&mut self) {
        self.flush_add();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply;

    fn pseudo_random(seed: u64, len: usize) -> Vec<u8> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (s >> 56) as u8
            })
            .collect()
    }

    #[test]
    fn identical_buffers_tiny_patch() {
        let base = pseudo_random(1, 4096);
        let patch = encode(&base, &base, &EncodeConfig::default());
        assert_eq!(apply(&base, &patch).unwrap(), base);
        assert!(
            patch.serialized_size() < 32,
            "patch for identical page should be a handful of bytes, got {}",
            patch.serialized_size()
        );
    }

    #[test]
    fn small_edit_small_patch() {
        let base = pseudo_random(2, 4096);
        let mut target = base.clone();
        for b in &mut target[1000..1016] {
            *b ^= 0xFF;
        }
        let patch = encode(&base, &target, &EncodeConfig::default());
        assert_eq!(apply(&base, &patch).unwrap(), target);
        assert!(
            patch.serialized_size() < 128,
            "16-byte edit should cost well under 128 B, got {}",
            patch.serialized_size()
        );
    }

    #[test]
    fn unrelated_buffers_fall_back_to_add() {
        let base = pseudo_random(3, 4096);
        let target = pseudo_random(4, 4096);
        let patch = encode(&base, &target, &EncodeConfig::default());
        assert_eq!(apply(&base, &patch).unwrap(), target);
        // Overhead over plain storage must stay small.
        assert!(patch.serialized_size() < target.len() + 64);
    }

    #[test]
    fn insertion_shifts_are_found() {
        // Target = base with 7 bytes inserted in the middle: the encoder
        // must still COPY both halves.
        let base = pseudo_random(5, 4096);
        let mut target = Vec::with_capacity(4103);
        target.extend_from_slice(&base[..2000]);
        target.extend_from_slice(b"INSERT!");
        target.extend_from_slice(&base[2000..]);
        let patch = encode(&base, &target, &EncodeConfig::default());
        assert_eq!(apply(&base, &patch).unwrap(), target);
        assert!(
            patch.serialized_size() < 100,
            "got {}",
            patch.serialized_size()
        );
    }

    #[test]
    fn level_zero_stores() {
        let base = pseudo_random(6, 1024);
        let patch = encode(&base, &base, &EncodeConfig::with_level(0));
        assert_eq!(patch.instrs.len(), 1);
        assert!(matches!(patch.instrs[0], Instr::Add(_)));
        assert_eq!(apply(&base, &patch).unwrap(), base);
    }

    #[test]
    fn higher_levels_never_larger_much() {
        // Construct a target with scattered small edits; deeper search
        // should find at least as much redundancy.
        let base = pseudo_random(7, 8192);
        let mut target = base.clone();
        let mut s = 99u64;
        for _ in 0..40 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pos = (s % 8000) as usize;
            target[pos] ^= 0x5A;
        }
        let p1 = encode(&base, &target, &EncodeConfig::with_level(1));
        let p9 = encode(&base, &target, &EncodeConfig::with_level(9));
        assert_eq!(apply(&base, &p1).unwrap(), target);
        assert_eq!(apply(&base, &p9).unwrap(), target);
        assert!(
            p9.serialized_size() <= p1.serialized_size() + 64,
            "level 9 ({}) should not be much larger than level 1 ({})",
            p9.serialized_size(),
            p1.serialized_size()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let patch = encode(b"", b"", &EncodeConfig::default());
        assert_eq!(apply(b"", &patch).unwrap(), b"");
        let patch = encode(b"short", b"tiny", &EncodeConfig::default());
        assert_eq!(apply(b"short", &patch).unwrap(), b"tiny");
        let patch = encode(b"", b"target-bytes-here", &EncodeConfig::default());
        assert_eq!(apply(b"", &patch).unwrap(), b"target-bytes-here");
    }

    /// Pins the level→(seed_step, max_probes) mapping for every level.
    /// Regression test for the PR 8 probe-budget bug: the old formula
    /// `1 << (level + 1).min(7)` gave level 9 128 probes and level 5
    /// 64, while the module doc table promises 64 and 16.
    #[test]
    fn with_level_matches_doc_table() {
        let expected: [(usize, usize, bool); 10] = [
            (0, 0, true),   // level 0: store
            (16, 4, false), // level 1
            (16, 4, false), // level 2
            (8, 16, false), // level 3
            (8, 16, false), // level 4
            (8, 16, false), // level 5
            (4, 64, false), // level 6
            (4, 64, false), // level 7
            (4, 64, false), // level 8
            (4, 64, false), // level 9
        ];
        for (level, &(step, probes, store)) in expected.iter().enumerate() {
            let cfg = EncodeConfig::with_level(level as u8);
            assert_eq!(
                (cfg.seed_step, cfg.max_probes, cfg.store_only),
                (step, probes, store),
                "level {level}"
            );
        }
        // Out-of-range levels clamp to 9.
        let cfg = EncodeConfig::with_level(200);
        assert_eq!((cfg.seed_step, cfg.max_probes), (4, 64));
    }

    /// The scratch-reusing fast path must emit bit-identical patches to
    /// the original HashMap encoder, including across reuses of one
    /// scratch.
    #[test]
    fn encode_with_matches_reference() {
        let mut scratch = EncodeScratch::new();
        let base = pseudo_random(21, 4096);
        let mut cases: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        // Near-duplicate, insertion-shifted, unrelated, identical.
        let mut t1 = base.clone();
        for b in &mut t1[600..640] {
            *b ^= 0xA5;
        }
        cases.push((base.clone(), t1));
        let mut t2 = Vec::new();
        t2.extend_from_slice(&base[..1000]);
        t2.extend_from_slice(b"odd-len-insert");
        t2.extend_from_slice(&base[1000..]);
        cases.push((base.clone(), t2));
        cases.push((base.clone(), pseudo_random(22, 4096)));
        cases.push((base.clone(), base.clone()));
        for level in [0u8, 1, 5, 9] {
            let cfg = EncodeConfig::with_level(level);
            for (base, target) in &cases {
                let fast = encode_with(base, target, &cfg, &mut scratch);
                let slow = encode_reference(base, target, &cfg);
                assert_eq!(fast, slow, "level {level}");
                assert_eq!(fast.to_bytes(), slow.to_bytes(), "level {level}");
                assert_eq!(apply(base, &fast).unwrap(), *target);
            }
        }
    }

    #[test]
    fn adjacent_copies_coalesce() {
        let base = pseudo_random(8, 4096);
        let patch = encode(&base, &base, &EncodeConfig::default());
        // A perfectly matching page should be a single COPY.
        assert_eq!(
            patch
                .instrs
                .iter()
                .filter(|i| matches!(i, Instr::Copy { .. }))
                .count(),
            1
        );
    }
}
