//! The Medes platform: a discrete-event cluster simulation.
//!
//! [`Platform::run`] executes a [`Trace`] against a cluster of worker
//! nodes under one of three policies (fixed keep-alive, adaptive
//! keep-alive, Medes) and produces a [`RunReport`].
//!
//! ## Event flow
//!
//! * `Arrival` → dispatch: idle warm sandbox (warm start) → idle dedup
//!   sandbox (restore, §4.2) → cold start (spawn; in Catalyzer mode a
//!   snapshot restore) → wait queue when no memory can be freed.
//! * `ExecDone` → sandbox goes warm; keep-alive / idle-period timers are
//!   armed; queued requests drain.
//! * `IdleCheck` (Medes) → consult the §5 policy targets; demarcate a
//!   base sandbox if `D/B > T`, else run the dedup op (§4.1).
//! * `KeepAliveExpire` / `KeepDedupExpire` → purge idle sandboxes.
//! * `PolicyTick` → re-estimate per-function state, re-solve targets.
//!
//! Every timer event carries the sandbox's `epoch`; state transitions
//! bump the epoch, so stale timers are ignored — the standard DES
//! pattern for cancellable timeouts.

use crate::config::{PlatformConfig, PolicyKind, RegistryPlacement};
use crate::controller::{FunctionRuntime, QueuedRequest};
use crate::dedup::{
    dedup_commit, dedup_op, dedup_scan, index_base_sandbox, DedupOutcome, DedupScan, DedupTiming,
};
use crate::ids::{FnId, NodeId, SandboxId};
use crate::images::ImageFactory;
use crate::metrics::{FnDedupStats, MetricsCollector, RequestRecord, RunReport, StartType};
use crate::pagecache::BasePageCache;
use crate::registry::RegistryClient;
use crate::restore::{restore_op_cached, RestoreTiming};
use crate::sandbox::{Sandbox, SandboxState};
use medes_mem::MemoryImage;
use medes_net::Fabric;
use medes_obs::Obs;
use medes_policy::keepalive::KeepAlivePolicy;
use medes_policy::medes::{solve, Objective};
use medes_policy::{AdaptiveKeepAlive, FixedKeepAlive, MedesPolicyConfig};
use medes_sim::engine::Scheduler;
use medes_sim::fault::FaultSchedule;
use medes_sim::{DetRng, SimDuration, SimTime, Simulation, World};
use medes_trace::{FunctionProfile, Trace};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// Retry cadence for requests parked in the wait queue.
const QUEUE_RETRY: SimDuration = SimDuration::from_millis(100);
/// A dedup op that saves less than this fraction of the image reverts
/// the sandbox to warm (not worth the restore cost).
const MIN_SAVING_FRAC: f64 = 0.05;

/// The platform: configuration + function catalog.
#[derive(Debug)]
pub struct Platform {
    cfg: PlatformConfig,
    profiles: Vec<FunctionProfile>,
}

impl Platform {
    /// Creates a platform.
    pub fn new(cfg: PlatformConfig, profiles: Vec<FunctionProfile>) -> Self {
        Platform { cfg, profiles }
    }

    /// Runs a trace to completion. Returns the metrics report together
    /// with the observability handle (buffered spans + metrics) as one
    /// [`RunOutcome`]. When the config has observability enabled with
    /// an export directory, the span trace is also written there as
    /// JSONL on completion.
    ///
    /// # Panics
    /// Panics if the trace's function table does not match the profile
    /// catalog, or if any function's footprint exceeds the per-node
    /// memory limit (such a function could never be scheduled and its
    /// requests would retry forever).
    pub fn run(&self, trace: &Trace) -> RunOutcome {
        assert_eq!(
            trace.functions.len(),
            self.profiles.len(),
            "trace function table must match the profile catalog"
        );
        let min_node = self.cfg.min_node_mem();
        for p in &self.profiles {
            assert!(
                p.memory_bytes <= min_node,
                "function {} needs {} bytes but the smallest node only has {}",
                p.name,
                p.memory_bytes,
                min_node
            );
        }
        let horizon = trace.duration();
        let mut cluster = Cluster::new(self.cfg.clone(), self.profiles.clone(), horizon);
        let mut sim = Simulation::new(cluster);
        for inv in &trace.invocations {
            sim.schedule(
                inv.time(),
                Ev::Arrival {
                    id: inv.id,
                    func: inv.function,
                },
            );
        }
        if self.cfg.is_medes() {
            sim.schedule(SimTime::ZERO, Ev::PolicyTick);
        }
        if self.cfg.obs.enabled && self.cfg.obs.sample_every_ms > 0 {
            sim.schedule(SimTime::ZERO, Ev::SampleTick);
        }
        for c in &self.cfg.faults.crashes {
            sim.schedule(c.at, Ev::NodeCrash { node: c.node });
            if let Some(r) = c.restart {
                sim.schedule(r, Ev::NodeRestart { node: c.node });
            }
        }
        for b in &self.cfg.deploys.bumps {
            assert!(
                b.function < self.profiles.len(),
                "deploy bump targets function {} but the catalog has {}",
                b.function,
                self.profiles.len()
            );
            sim.schedule(
                b.at,
                Ev::VersionBump {
                    func: b.function,
                    version: b.version,
                },
            );
        }
        sim.run();
        let end = sim.now();
        cluster = sim.into_world();
        let obs = Arc::clone(&cluster.obs);
        let report = cluster.finish(end);
        match obs.write_trace() {
            Ok(Some(path)) => eprintln!("[obs] wrote {}", path.display()),
            Ok(None) => {}
            Err(e) => eprintln!("warning: failed to write obs trace: {e}"),
        }
        let slo = obs.slo_summary();
        RunOutcome { report, obs, slo }
    }
}

/// The full result of one [`Platform::run`]: the metrics report plus
/// the observability handle for inspecting buffered spans and metrics.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run's metrics (deterministic; `PartialEq` for replay
    /// assertions).
    pub report: RunReport,
    /// The run's observability handle (spans, counters, histograms).
    pub obs: Arc<Obs>,
    /// Per-function SLO summaries (paper §5.2: startup latency against
    /// the `α · s_W` bound). Empty when observability is disabled.
    pub slo: Vec<medes_obs::FnSloSummary>,
}

/// A request travelling through dispatch.
#[derive(Debug, Clone, Copy)]
struct ReqInfo {
    id: u64,
    func: usize,
    arrival: SimTime,
}

/// Platform events.
enum Ev {
    Arrival {
        id: u64,
        func: usize,
    },
    SpawnDone {
        sb: SandboxId,
        req: ReqInfo,
    },
    RestoreDone {
        sb: SandboxId,
        req: ReqInfo,
        read_paper: usize,
    },
    ExecDone {
        sb: SandboxId,
        rec: RequestRecord,
    },
    IdleCheck {
        sb: SandboxId,
        epoch: u64,
    },
    KeepAliveExpire {
        sb: SandboxId,
        epoch: u64,
    },
    KeepDedupExpire {
        sb: SandboxId,
        epoch: u64,
    },
    DedupDone {
        sb: SandboxId,
        epoch: u64,
        outcome: Box<DedupOutcome>,
    },
    /// Batched dedup pipeline: drain the pending-dedup queue, fan the
    /// scans across the worker pool, commit in first-enqueued order.
    DedupFlush,
    PolicyTick,
    /// Deterministic time-series sampler: snapshot the declared
    /// gauge/counter set every [`medes_obs::ObsConfig::sample_every_ms`]
    /// *simulated* milliseconds. Strictly read-only against simulation
    /// state, so the `RunReport` is byte-identical whether sampling is
    /// on or off.
    SampleTick,
    RetryQueue {
        func: usize,
    },
    NodeCrash {
        node: usize,
    },
    NodeRestart {
        node: usize,
    },
    /// A rolling deploy reached this function: bump its deployed code
    /// version, purge stale idle sandboxes, and retire stale base
    /// registrations from the fingerprint registry.
    VersionBump {
        func: usize,
        version: u64,
    },
}

/// Per-node accounting.
#[derive(Debug, Default)]
struct NodeState {
    mem_used: usize,
    sandboxes: BTreeSet<SandboxId>,
    /// Crashed and not yet restarted: unschedulable, and RDMA reads
    /// against it fail (the fabric's fault schedule agrees).
    down: bool,
}

struct Cluster {
    cfg: PlatformConfig,
    factory: ImageFactory,
    fabric: Fabric,
    registry: RegistryClient,
    nodes: Vec<NodeState>,
    sandboxes: HashMap<SandboxId, Sandbox>,
    fns: Vec<FunctionRuntime>,
    /// Base-sandbox resolver data: id → (function, pinned image).
    bases: HashMap<SandboxId, (FnId, Arc<MemoryImage>)>,
    /// Per-node base-page caches for the restore read path. Present in
    /// every run (zero-capacity when disabled, where they are inert).
    caches: Vec<BasePageCache>,
    /// Deployed code version per function (rolling deploys bump these;
    /// all zero without a deploy schedule).
    fn_version: Vec<u64>,
    fixed_ka: Option<FixedKeepAlive>,
    adaptive_ka: Option<AdaptiveKeepAlive>,
    medes: Option<MedesPolicyConfig>,
    rng: DetRng,
    next_sandbox: u64,
    cluster_mem: usize,
    metrics: MetricsCollector,
    obs: Arc<Obs>,
    /// Don't re-arm periodic events past this instant.
    horizon: SimTime,
    /// Sandboxes queued for the batched dedup pipeline: `(id, epoch at
    /// enqueue)`, in enqueue order. Empty on the legacy serial path.
    pending_dedups: Vec<(SandboxId, u64)>,
    /// Whether a `DedupFlush` is already scheduled.
    flush_armed: bool,
}

impl Cluster {
    fn new(cfg: PlatformConfig, profiles: Vec<FunctionProfile>, horizon: SimTime) -> Self {
        let factory = ImageFactory::new(&profiles, cfg.content.clone(), cfg.aslr, cfg.mem_scale);
        let obs = Obs::new(cfg.obs.clone());
        let mut fabric = Fabric::with_obs(cfg.nodes, cfg.net.clone(), Arc::clone(&obs));
        if !cfg.faults.is_empty() {
            fabric.set_faults(FaultSchedule::compile(&cfg.faults));
        }
        let names: Vec<String> = profiles.iter().map(|p| p.name.clone()).collect();
        let metrics =
            MetricsCollector::with_obs(names, SimDuration::from_secs(10), Arc::clone(&obs));
        let (fixed_ka, adaptive_ka, medes) = match &cfg.policy {
            PolicyKind::FixedKeepAlive(d) => (Some(FixedKeepAlive::new(*d)), None, None),
            PolicyKind::AdaptiveKeepAlive => (None, Some(AdaptiveKeepAlive::paper_default()), None),
            PolicyKind::Medes(m) => (None, None, Some(m.clone())),
        };
        let rng = DetRng::new(cfg.seed);
        Cluster {
            nodes: (0..cfg.nodes).map(|_| NodeState::default()).collect(),
            fn_version: vec![0; profiles.len()],
            fns: profiles.into_iter().map(FunctionRuntime::new).collect(),
            sandboxes: HashMap::new(),
            bases: HashMap::new(),
            caches: (0..cfg.nodes)
                .map(|n| {
                    BasePageCache::with_obs(
                        cfg.read_path.page_cache_bytes,
                        cfg.mem_scale,
                        Arc::clone(&obs),
                        n as u64,
                    )
                })
                .collect(),
            fixed_ka,
            adaptive_ka,
            medes,
            rng,
            next_sandbox: 0,
            cluster_mem: 0,
            metrics,
            horizon,
            factory,
            fabric,
            registry: match cfg.registry {
                RegistryPlacement::InProcess => {
                    RegistryClient::in_process(cfg.pipeline.shards, Arc::clone(&obs))
                }
                RegistryPlacement::Distributed { owners } => RegistryClient::distributed(
                    cfg.pipeline.shards,
                    owners,
                    cfg.nodes,
                    cfg.net.clone(),
                    cfg.retry,
                    Arc::clone(&obs),
                ),
            },
            obs,
            cfg,
            pending_dedups: Vec::new(),
            flush_armed: false,
        }
    }

    // ------------------------------------------------------------------
    // Memory accounting.
    // ------------------------------------------------------------------

    fn charge(&mut self, now: SimTime, node: NodeId, delta: i64) {
        let n = &mut self.nodes[node.0];
        n.mem_used = (n.mem_used as i64 + delta) as usize;
        self.cluster_mem = (self.cluster_mem as i64 + delta) as usize;
        self.metrics.mem_update(now, self.cluster_mem as f64);
    }

    fn node_free(&self, node: NodeId) -> usize {
        self.cfg
            .node_mem(node.0)
            .saturating_sub(self.nodes[node.0].mem_used)
    }

    fn cache_enabled(&self) -> bool {
        self.cfg.read_path.page_cache_bytes > 0
    }

    /// Settles the node-memory charge after cache mutations: cached
    /// base pages are real resident bytes and are charged like any
    /// other sandbox state. No-op (and no metrics traffic) when the
    /// cache usage did not change.
    fn reconcile_cache_charge(&mut self, now: SimTime, node: NodeId, before: usize) {
        let after = self.caches[node.0].used_paper_bytes();
        if after != before {
            self.charge(now, node, after as i64 - before as i64);
        }
    }

    /// Drops a dead base's pages from every node cache: once a base
    /// sandbox is purged (eviction or crash) its pages must never be
    /// served from cache again.
    fn invalidate_cached_base(&mut self, now: SimTime, base: SandboxId) {
        if !self.cache_enabled() {
            return;
        }
        for i in 0..self.caches.len() {
            let before = self.caches[i].used_paper_bytes();
            self.caches[i].invalidate_sandbox(base);
            self.reconcile_cache_charge(now, NodeId(i), before);
        }
    }

    /// Ensures `needed` free bytes on a node by evicting idle sandboxes
    /// (LRU; base sandboxes only when unreferenced, and last).
    /// `exclude` protects a sandbox the caller is about to use (e.g. the
    /// dedup sandbox being restored) from being evicted to make its own
    /// room.
    fn ensure_capacity(
        &mut self,
        now: SimTime,
        node: NodeId,
        needed: usize,
        exclude: Option<SandboxId>,
    ) -> bool {
        if self.node_free(node) >= needed {
            return true;
        }
        // Shed cache memory first: cached base pages are strictly less
        // valuable than live sandboxes (they can always be re-fetched).
        if self.cache_enabled() {
            let shortfall = needed - self.node_free(node);
            let before = self.caches[node.0].used_paper_bytes();
            self.caches[node.0].trim(shortfall);
            self.reconcile_cache_charge(now, node, before);
            if self.node_free(node) >= needed {
                return true;
            }
        }
        // Gather idle candidates on this node, LRU first. Ordering:
        // idle *warm* sandboxes are evicted before *dedup* sandboxes —
        // a dedup sandbox holds a fraction of the memory and is the
        // insurance Medes paid for — and base sandboxes go last.
        let mut candidates: Vec<(u8, SimTime, SandboxId)> = self.nodes[node.0]
            .sandboxes
            .iter()
            .filter_map(|&id| {
                if Some(id) == exclude {
                    return None;
                }
                let sb = &self.sandboxes[&id];
                if !sb.state.assignable() {
                    return None; // busy (running/restoring/deduping/spawning)
                }
                if sb.is_base && sb.refcount > 0 {
                    return None; // pinned by dedup sandboxes
                }
                let class = if sb.is_base {
                    2
                } else if sb.state == SandboxState::Dedup {
                    1
                } else {
                    0
                };
                Some((class, sb.last_used, id))
            })
            .collect();
        candidates.sort_unstable();
        for (_, _, id) in candidates {
            if self.node_free(node) >= needed {
                break;
            }
            self.purge_sandbox(now, id);
            self.metrics.push_eviction();
        }
        self.node_free(node) >= needed
    }

    // ------------------------------------------------------------------
    // Sandbox bookkeeping.
    // ------------------------------------------------------------------

    fn live_count(&self) -> usize {
        self.sandboxes.len()
    }

    /// One deterministic time-series sample at simulated time `now`:
    /// per-node memory, page-cache hit rate, registry per-shard
    /// occupancy, live sandboxes, dedup batch depth, SLO violations,
    /// plus a snapshot of every registered counter/gauge. Strictly
    /// read-only against simulation state — it must never perturb the
    /// `RunReport` (the obs-overhead experiment pins this).
    fn sample_tick(&self, now: SimTime) {
        for (i, n) in self.nodes.iter().enumerate() {
            self.obs
                .series_point(&format!("medes.node.{i}.mem_bytes"), now, n.mem_used as f64);
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        for c in &self.caches {
            let s = c.stats();
            hits += s.hits;
            misses += s.misses;
        }
        let rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        self.obs.series_point("medes.cache.hit_rate", now, rate);
        self.obs
            .series_point("medes.dedup.pending", now, self.pending_dedups.len() as f64);
        // Live sandboxes, SLO violations, and per-shard registry
        // occupancy are already registry gauges (kept current by the
        // metrics and registry layers), so the registry snapshot below
        // covers them — pointing them explicitly too would write two
        // samples at the same timestamp.
        self.obs.series_sample(now);
    }

    /// Purges a sandbox completely (eviction or expiry).
    fn purge_sandbox(&mut self, now: SimTime, id: SandboxId) {
        let Some(sb) = self.sandboxes.remove(&id) else {
            return;
        };
        debug_assert!(sb.state.assignable(), "only idle sandboxes are purged");
        let rt = &mut self.fns[sb.func.0];
        rt.idle_warm.remove(&(sb.last_used, id));
        rt.idle_dedup.remove(&(sb.last_used, id));
        rt.total_sandboxes -= 1;
        if sb.state == SandboxState::Dedup {
            rt.dedup_total -= 1;
        }
        self.nodes[sb.node.0].sandboxes.remove(&id);
        self.charge(now, sb.node, -(sb.mem_paper_bytes as i64));
        // Release base references held by the dedup table.
        if let Some(table) = &sb.dedup_table {
            self.release_base_refs(table);
        }
        if sb.is_base {
            debug_assert_eq!(sb.refcount, 0, "purging a referenced base");
            self.registry.remove_sandbox(id);
            self.factory.unpin_v(sb.func, sb.instance_seed, sb.version);
            self.bases.remove(&id);
            self.fns[sb.func.0].bases.retain(|&b| b != id);
            self.invalidate_cached_base(now, id);
        }
        self.metrics.live_update(now, self.live_count() as f64);
    }

    fn release_base_refs(&mut self, table: &crate::sandbox::DedupPageTable) {
        let mut seen: HashSet<SandboxId> = HashSet::new();
        for entry in &table.entries {
            if let crate::sandbox::PageEntry::Patched { base_sandbox, .. } = entry {
                if seen.insert(*base_sandbox) {
                    if let Some(sb) = self.sandboxes.get_mut(base_sandbox) {
                        sb.refcount = sb.refcount.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Promotes a warm sandbox to a base: pins its image, indexes every
    /// page in the registry, and registers it with its function. The
    /// sandbox stays warm (and stays in the idle-warm pool).
    fn demarcate_base(&mut self, id: SandboxId) {
        let (func, seed, node, version) = {
            let sb = &self.sandboxes[&id];
            (sb.func, sb.instance_seed, sb.node, sb.version)
        };
        let img = self.factory.pin_v(func, seed, version);
        index_base_sandbox(&self.cfg, &self.registry, node, id, &img);
        self.bases.insert(id, (func, img));
        self.fns[func.0].bases.push(id);
        self.sandboxes.get_mut(&id).expect("exists").is_base = true;
    }

    /// After a crash removed base sandboxes, promotes MRU idle warm
    /// sandboxes until `D/B ≤ T` holds again for this function (or no
    /// candidates remain — orphaned dedup sandboxes then fall back to
    /// cold starts when dispatched).
    fn re_demarcate(&mut self, f: usize) {
        let Some(medes) = self.medes.clone() else {
            return;
        };
        while self.fns[f].dedup_total > 0 && self.fns[f].needs_base(medes.base_threshold) {
            let cand = self.fns[f]
                .idle_warm
                .iter()
                .rev()
                .map(|&(_, id)| id)
                .find(|id| !self.sandboxes[id].is_base);
            let Some(id) = cand else {
                break;
            };
            self.demarcate_base(id);
            self.obs.incr("medes.platform.re_demarcations");
        }
    }

    /// Re-dispatches a request whose sandbox vanished in a crash.
    fn reschedule(&mut self, req: ReqInfo, sched: &mut Scheduler<Ev>) {
        self.metrics.report.rescheduled_requests += 1;
        self.obs.incr("medes.platform.rescheduled");
        self.dispatch(req, sched);
    }

    /// Handles a node crash: marks it down, purges every resident
    /// sandbox (any state), drops the dead node's registry chunks, and
    /// re-demarcates bases for the affected functions.
    fn node_crash(&mut self, now: SimTime, node: usize) {
        if node >= self.nodes.len() || self.nodes[node].down {
            return;
        }
        self.nodes[node].down = true;
        self.metrics.report.node_crashes += 1;
        self.obs.incr("medes.platform.node_crashes");
        let victims: Vec<SandboxId> = self.nodes[node].sandboxes.iter().copied().collect();
        let mut affected: Vec<usize> = Vec::new();
        for id in victims {
            if let Some(f) = self.crash_purge(now, id) {
                if !affected.contains(&f) {
                    affected.push(f);
                }
            }
        }
        debug_assert_eq!(
            self.registry.locs_on_node(NodeId(node)),
            0,
            "crash purge must drop every registry chunk on the dead node"
        );
        // Shard ownership survives the crash: a distributed backend
        // purges the dead owner's shard copies, re-demarcates them to
        // survivors, and re-replicates the recoverable entries (their
        // bases live on surviving nodes — the dead node's bases were
        // just purged above). In-process backends own nothing here.
        let recovery = self.registry.on_node_crash(NodeId(node));
        debug_assert_eq!(
            self.registry.entries_owned_by(NodeId(node)),
            0,
            "re-demarcation must leave no shard owned by the dead node"
        );
        if recovery.reassigned_shards > 0 {
            self.obs.incr("medes.platform.registry_reassignments");
        }
        // The dead node's own cache dies with it (its memory is gone);
        // entries for its bases were already invalidated cluster-wide
        // by the crash purges above.
        if self.cache_enabled() {
            let before = self.caches[node].used_paper_bytes();
            self.caches[node].clear();
            self.reconcile_cache_charge(now, NodeId(node), before);
        }
        for f in affected {
            self.re_demarcate(f);
        }
    }

    /// Removes a sandbox in ANY state because its node crashed. Unlike
    /// [`Cluster::purge_sandbox`] this also tears down referenced
    /// bases: surviving dedup sandboxes that point at them will fail
    /// their restore and fall back to a cold start (§5.3). Returns the
    /// sandbox's function for re-demarcation.
    fn crash_purge(&mut self, now: SimTime, id: SandboxId) -> Option<usize> {
        let sb = self.sandboxes.remove(&id)?;
        let f = sb.func.0;
        let rt = &mut self.fns[f];
        rt.idle_warm.remove(&(sb.last_used, id));
        rt.idle_dedup.remove(&(sb.last_used, id));
        rt.total_sandboxes -= 1;
        // A Restoring sandbox left the idle-dedup pool but its
        // dedup_total decrement only happens at RestoreDone — which will
        // now never fire for it.
        if matches!(sb.state, SandboxState::Dedup | SandboxState::Restoring) {
            rt.dedup_total -= 1;
        }
        self.nodes[sb.node.0].sandboxes.remove(&id);
        self.charge(now, sb.node, -(sb.mem_paper_bytes as i64));
        if let Some(table) = &sb.dedup_table {
            self.release_base_refs(table);
        }
        if sb.is_base {
            // Even a referenced base dies with its node; dependants
            // discover the loss when their restore fails.
            self.registry.remove_sandbox(id);
            self.factory.unpin_v(sb.func, sb.instance_seed, sb.version);
            self.bases.remove(&id);
            self.fns[f].bases.retain(|&b| b != id);
            self.invalidate_cached_base(now, id);
        }
        self.metrics.live_update(now, self.live_count() as f64);
        Some(f)
    }

    /// Applies a rolling-deploy version bump to one function: records
    /// the new deployed version (new cold starts pick it up), purges
    /// every *idle* stale-version sandbox outright, and retires the
    /// registry/base registrations of stale bases that cannot be purged
    /// yet (referenced by in-flight dedup tables, or busy serving a
    /// request) — their pages hold old-version content and must never
    /// match a new dedup scan. Busy non-base sandboxes are caught at
    /// `ExecDone`/`DedupDone` via the stale-version check.
    fn version_bump(&mut self, now: SimTime, f: usize, version: u64) {
        if f >= self.fns.len() || version <= self.fn_version[f] {
            return; // out-of-order or duplicate bump: ignore
        }
        self.fn_version[f] = version;
        self.metrics.report.version_bumps += 1;
        self.obs.incr("medes.platform.version_bumps");
        // Idle sandboxes (warm and dedup pools) die immediately — their
        // content is obsolete. Referenced bases are excluded: they are
        // retired below and die when their refcount drains.
        let stale: Vec<SandboxId> = self.fns[f]
            .idle_warm
            .iter()
            .chain(self.fns[f].idle_dedup.iter())
            .map(|&(_, id)| id)
            .filter(|id| {
                let sb = &self.sandboxes[id];
                sb.version < version && !(sb.is_base && sb.refcount > 0)
            })
            .collect();
        for id in stale {
            self.purge_sandbox(now, id);
            self.metrics.report.version_purges += 1;
            self.obs.incr("medes.platform.version_purges");
        }
        // Retire stale bases that survived (referenced or busy): drop
        // their pages from the registry, the demarcation list, and the
        // read caches so no *new* dedup can match old-version content.
        // In-flight restores still resolve through `self.bases`.
        let retired: Vec<SandboxId> = self.fns[f]
            .bases
            .iter()
            .copied()
            .filter(|id| {
                self.sandboxes
                    .get(id)
                    .is_some_and(|sb| sb.version < version)
            })
            .collect();
        for id in retired {
            self.registry.remove_sandbox(id);
            self.fns[f].bases.retain(|&b| b != id);
            self.invalidate_cached_base(now, id);
            self.metrics.report.version_purges += 1;
            self.obs.incr("medes.platform.version_purges");
        }
    }

    /// The §5.2 SLO bound for one function: `α · s_W` microseconds
    /// under the Medes latency-target objective (P1 promises average
    /// startup latency stays within `α` of a warm start), 0 — no bound
    /// — under memory-budget objectives and non-Medes policies.
    fn slo_bound_us(&self, func: usize) -> u64 {
        match &self.medes {
            Some(m) => match m.objective {
                Objective::LatencyTarget { alpha } => {
                    (alpha * self.fns[func].profile.warm_start().as_micros() as f64) as u64
                }
                Objective::MemoryBudget { .. } => 0,
            },
            None => 0,
        }
    }

    fn keep_alive_window(&self, func: usize) -> SimDuration {
        if let Some(f) = &self.fixed_ka {
            f.keep_alive(func)
        } else if let Some(a) = &self.adaptive_ka {
            a.keep_alive(func)
        } else {
            self.medes
                .as_ref()
                .map(|m| m.keep_alive)
                .unwrap_or(SimDuration::from_mins(10))
        }
    }

    fn sample_exec(&mut self, func: usize) -> SimDuration {
        let p = &self.fns[func].profile;
        let mean = p.exec_time().as_secs_f64();
        let cv = p.exec_cv.max(0.0);
        if cv < 1e-9 {
            return p.exec_time();
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        SimDuration::from_secs_f64(self.rng.log_normal(mu, sigma2.sqrt()))
    }

    // ------------------------------------------------------------------
    // Dispatch.
    // ------------------------------------------------------------------

    fn dispatch(&mut self, req: ReqInfo, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let f = req.func;

        // 1. Warm start: most recently used idle warm sandbox.
        if let Some(&(lu, id)) = self.fns[f].idle_warm.iter().next_back() {
            self.fns[f].idle_warm.remove(&(lu, id));
            let warm = self.fns[f].profile.warm_start();
            let exec = self.sample_exec(f);
            let sb = self.sandboxes.get_mut(&id).expect("idle sandbox exists");
            sb.transition(SandboxState::Running);
            let startup = now.since(req.arrival) + warm;
            let rec = RequestRecord {
                id: req.id,
                func: f,
                arrival_us: req.arrival.as_micros(),
                startup_us: startup.as_micros(),
                exec_us: exec.as_micros(),
                e2e_us: 0, // finalized at ExecDone
                start: StartType::Warm,
            };
            sched.after(warm + exec, Ev::ExecDone { sb: id, rec });
            return;
        }

        // 2. Dedup start: restore the most recently used dedup sandbox.
        if let Some(&(lu, id)) = self.fns[f].idle_dedup.iter().next_back() {
            let (node, cur_mem) = {
                let sb = &self.sandboxes[&id];
                (sb.node, sb.mem_paper_bytes)
            };
            let m_w = self.fns[f].profile.memory_bytes;
            // Base pages are read and patched page-by-page, so the
            // transient read volume (m_R) never needs to be resident at
            // once; the restore only needs the final warm footprint.
            let needed = m_w.saturating_sub(cur_mem);
            if self.ensure_capacity(now, node, needed, Some(id)) {
                self.fns[f].idle_dedup.remove(&(lu, id));
                // Run the restore op against pinned base images.
                let table = self.sandboxes[&id].dedup_table.clone_for_restore();
                let verify = if self.cfg.verify_restores {
                    let sb = &self.sandboxes[&id];
                    Some(self.factory.image_v(sb.func, sb.instance_seed, sb.version))
                } else {
                    None
                };
                let cache_on = self.cache_enabled();
                let cache_before = self.caches[node.0].used_paper_bytes();
                // The request's trace root is a pure function of
                // (seed, request id), so the identical context is
                // re-minted at ExecDone for the request span — no
                // state threading through events. Fabric retries
                // during the base read parent under the base-read
                // phase span the op will emit afterwards.
                let root = self.obs.trace_root("request", self.cfg.seed, req.id);
                let op_ctx = RestoreTiming::op_ctx(root);
                let restored = {
                    let mut fabric = self.fabric.with_ctx(RestoreTiming::base_read_ctx(op_ctx));
                    let bases = &self.bases;
                    let cache = if cache_on {
                        Some(&mut self.caches[node.0])
                    } else {
                        None
                    };
                    restore_op_cached(
                        &self.cfg,
                        &mut fabric,
                        node,
                        table.as_ref().expect("dedup sandbox has a table"),
                        &|bid| bases.get(&bid).map(|(f, img)| (Arc::clone(img), *f)),
                        cache,
                        verify.as_deref(),
                    )
                };
                if cache_on {
                    // Charge freshly cached pages to node memory, and
                    // trim the cache back if that pushed the node over
                    // its limit (cached pages are expendable).
                    self.reconcile_cache_charge(now, node, cache_before);
                    let over = self.nodes[node.0]
                        .mem_used
                        .saturating_sub(self.cfg.node_mem(node.0));
                    if over > 0 {
                        let before = self.caches[node.0].used_paper_bytes();
                        self.caches[node.0].trim(over);
                        self.reconcile_cache_charge(now, node, before);
                    }
                }
                match restored {
                    Ok(outcome) => {
                        outcome.timing.record(
                            &self.obs,
                            now,
                            &self.fns[f].profile.name,
                            root,
                            node.0,
                        );
                        if self.cfg.read_path.active() && self.obs.enabled() {
                            // The cache span covers the base-read phase
                            // it accelerates, and sits under it in the
                            // trace tree.
                            let base_read = RestoreTiming::base_read_ctx(op_ctx);
                            self.obs
                                .span_in(
                                    "medes.restore.cache",
                                    now,
                                    base_read.child("medes.restore.cache", 0),
                                )
                                .attr("hits", outcome.cache_hits)
                                .attr("misses", outcome.cache_misses)
                                .end(now + outcome.timing.base_read);
                        }
                        let sb = self.sandboxes.get_mut(&id).expect("sandbox exists");
                        sb.transition(SandboxState::Restoring);
                        let grow = m_w as i64 - cur_mem as i64;
                        self.charge(now, node, grow.max(0));
                        let sbm = self.sandboxes.get_mut(&id).expect("sandbox exists");
                        sbm.mem_paper_bytes = cur_mem.max(m_w);
                        sched.after(
                            outcome.timing.total(),
                            Ev::RestoreDone {
                                sb: id,
                                req,
                                read_paper: outcome.read_paper_bytes,
                            },
                        );
                        // Record the Fig 8 breakdown.
                        let stats = &mut self.metrics.report.dedup_stats[f];
                        stats.restores += 1;
                        let n = stats.restores;
                        FnDedupStats::fold(
                            &mut stats.mean_restore_us.0,
                            n,
                            outcome.timing.base_read.as_micros() as f64,
                        );
                        FnDedupStats::fold(
                            &mut stats.mean_restore_us.1,
                            n,
                            outcome.timing.page_compute.as_micros() as f64,
                        );
                        FnDedupStats::fold(
                            &mut stats.mean_restore_us.2,
                            n,
                            outcome.timing.ckpt_restore.as_micros() as f64,
                        );
                        self.fns[f].record_dedup_start(outcome.timing.total());
                        self.fns[f].record_restore_reads(outcome.read_paper_bytes);
                        return;
                    }
                    Err(err) => {
                        // The base pages are unreachable (crashed base
                        // node, or reads broken past the retry policy):
                        // §5.3 — discard the dedup sandbox and fall back
                        // to a cold start. Impossible without faults.
                        debug_assert!(
                            !self.cfg.faults.is_empty(),
                            "restore failed without fault injection: {err}"
                        );
                        let _ = &err;
                        self.metrics.report.fallback_cold_starts += 1;
                        self.obs.incr("medes.platform.starts.fallback_cold");
                        self.purge_sandbox(now, id);
                        // Fall through to the cold path below.
                    }
                }
            }
            // No room to restore (or the restore failed): fall through to
            // the cold path, which may evict this very dedup sandbox if
            // that's what it takes.
        }

        // 3. Cold start.
        let m_w = self.fns[f].profile.memory_bytes;
        let node = self.pick_node(now, m_w);
        let Some(node) = node else {
            // 4. No capacity anywhere: park in the wait queue. Exactly
            // one retry chain per function keeps the event count linear.
            self.fns[f].wait_queue.push_back(QueuedRequest {
                id: req.id,
                arrival: req.arrival,
            });
            self.obs.incr("medes.platform.queued");
            if !self.fns[f].retry_armed {
                self.fns[f].retry_armed = true;
                sched.after(QUEUE_RETRY, Ev::RetryQueue { func: f });
            }
            return;
        };
        let id = SandboxId(self.next_sandbox);
        self.next_sandbox += 1;
        let instance_seed = self.rng.next_u64();
        let model_pages = self.factory.model_pages(FnId(f));
        let sb = Sandbox::new(id, FnId(f), node, instance_seed, now, m_w, model_pages)
            .with_version(self.fn_version[f]);
        self.sandboxes.insert(id, sb);
        self.nodes[node.0].sandboxes.insert(id);
        self.fns[f].total_sandboxes += 1;
        self.charge(now, node, m_w as i64);
        self.metrics.report.sandboxes_spawned += 1;
        self.metrics.live_update(now, self.live_count() as f64);
        let spawn_time = if self.cfg.catalyzer_mode {
            self.cfg.catalyzer_restore
        } else {
            self.fns[f].profile.cold_start()
        };
        sched.after(spawn_time, Ev::SpawnDone { sb: id, req });
    }

    /// Picks the node with the most free memory that can (be made to)
    /// fit `bytes`; evicts idle sandboxes if necessary.
    fn pick_node(&mut self, now: SimTime, bytes: usize) -> Option<NodeId> {
        let mut order: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| !self.nodes[i].down)
            .collect();
        order.sort_unstable_by_key(|&i| std::cmp::Reverse(self.node_free(NodeId(i))));
        for i in &order {
            if self.node_free(NodeId(*i)) >= bytes {
                return Some(NodeId(*i));
            }
        }
        // Nothing fits outright: try eviction, most-free node first.
        for i in order {
            if self.ensure_capacity(now, NodeId(i), bytes, None) {
                return Some(NodeId(i));
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Medes: dedup decision at idle-period expiry.
    // ------------------------------------------------------------------

    /// Trace-root key for one dedup op: a deterministic mix of the
    /// sandbox id and the initiation instant (a sandbox can dedup more
    /// than once, so the id alone would merge distinct ops' traces).
    fn dedup_trace_key(&self, id: SandboxId, now: SimTime) -> u64 {
        (id.0 ^ 0xD6E8_FEB8_6659_FD93).wrapping_mul(0x2545_F491_4F6C_DD1D) ^ now.as_micros()
    }

    fn idle_check(&mut self, id: SandboxId, epoch: u64, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        let Some(medes) = self.medes.clone() else {
            return;
        };
        let Some(sb) = self.sandboxes.get(&id) else {
            return;
        };
        if sb.epoch != epoch || sb.state != SandboxState::Warm {
            return;
        }
        if now.since(sb.last_used) < medes.idle_period {
            sched.at(
                sb.last_used + medes.idle_period,
                Ev::IdleCheck { sb: id, epoch },
            );
            return;
        }
        let f = sb.func.0;

        // Base demarcation has priority: the first dedup-eligible
        // sandbox (or one per T dedups) becomes a base instead.
        if !sb.is_base && self.fns[f].needs_base(medes.base_threshold) {
            self.demarcate_base(id);
            // A base stays warm; keep-alive keeps re-arming while it is
            // referenced. Nothing more to do now.
            return;
        }

        // Dedup when below the policy's target, when the LP was
        // infeasible (aggressive mode), or under memory pressure — the
        // paper's policy "keeps the sandboxes warm only if enough memory
        // is available" (§5.2.3); the per-node limit is a policy input
        // (§7.2).
        let rt = &self.fns[f];
        let capacity = self.cfg.cluster_mem_bytes();
        let pressure = self.cluster_mem as f64 > 0.90 * capacity as f64;
        let want_dedup = rt.dedup_total < rt.target.target_dedup || !rt.target.feasible || pressure;
        if !want_dedup || sb.is_base {
            // Stay warm; re-evaluate after another idle period.
            if now + medes.idle_period <= self.horizon + medes.keep_alive {
                sched.after(medes.idle_period, Ev::IdleCheck { sb: id, epoch });
            }
            return;
        }

        // Run the dedup op.
        let (func, seed, node, version) = {
            let sb = self.sandboxes.get_mut(&id).expect("exists");
            let info = (sb.func, sb.instance_seed, sb.node, sb.version);
            sb.transition(SandboxState::Deduping);
            info
        };
        {
            let sb = &self.sandboxes[&id];
            let rt = &mut self.fns[f];
            rt.idle_warm.remove(&(sb.last_used, id));
        }
        if self.cfg.pipeline.enabled() {
            // Batched pipeline: queue the sandbox (it is already in
            // `Deduping`, so dispatch cannot reclaim it) and make sure a
            // flush is scheduled. The scan runs at flush time on the
            // worker pool; outcomes commit in this enqueue order.
            let epoch = self.sandboxes[&id].epoch;
            self.pending_dedups.push((id, epoch));
            if !self.flush_armed {
                self.flush_armed = true;
                sched.after(self.cfg.pipeline.flush_interval, Ev::DedupFlush);
            }
            return;
        }
        let image = self.factory.image_v(func, seed, version);
        // A sandbox can dedup more than once over its life, so the
        // dedup trace root is keyed by (sandbox id, initiation time) —
        // both deterministic, so replays mint identical trees.
        let droot = self
            .obs
            .trace_root("dedup", self.cfg.seed, self.dedup_trace_key(id, now));
        let result = {
            let mut fabric = self.fabric.with_ctx(DedupTiming::op_ctx(droot));
            let bases = &self.bases;
            dedup_op(
                &self.cfg,
                &self.registry,
                &mut fabric,
                node,
                func,
                &image,
                &|bid| bases.get(&bid).map(|(bf, img)| (Arc::clone(img), *bf)),
            )
        };
        let outcome = match result {
            Ok(o) => o,
            Err(_) => {
                // Fault-injected failure (controller RPC or base reads
                // stayed broken past the retry policy): abort the dedup
                // and keep the sandbox warm — it will be reconsidered
                // after another idle period.
                debug_assert!(!self.cfg.faults.is_empty());
                self.obs.incr("medes.platform.dedup_aborts");
                let sb = self.sandboxes.get_mut(&id).expect("exists");
                sb.transition(SandboxState::Warm);
                sb.last_used = now;
                let epoch = sb.epoch;
                self.fns[f].idle_warm.insert((now, id));
                sched.after(
                    self.keep_alive_window(f),
                    Ev::KeepAliveExpire { sb: id, epoch },
                );
                if now + medes.idle_period <= self.horizon + medes.keep_alive {
                    sched.after(medes.idle_period, Ev::IdleCheck { sb: id, epoch });
                }
                return;
            }
        };
        outcome.timing.record(
            &self.obs,
            now,
            &self.fns[f].profile.name,
            self.cfg.to_paper_bytes(image.total_bytes()),
            droot,
            node.0,
        );
        // Pin the referenced bases *now*: the dedup table already points
        // into them, and they must survive until DedupDone commits (or
        // reverts) the state.
        for base in &outcome.referenced_bases {
            if let Some(b) = self.sandboxes.get_mut(base) {
                b.refcount += 1;
            }
        }
        let epoch = self.sandboxes[&id].epoch;
        sched.after(
            outcome.timing.total(),
            Ev::DedupDone {
                sb: id,
                epoch,
                outcome: Box::new(outcome),
            },
        );
    }

    /// Drains the pending-dedup queue: validates entries (crash purges
    /// and epoch bumps invalidate stale ones), fans the pure compute
    /// phase ([`dedup_scan`]) across a `std::thread::scope` worker
    /// pool, then commits each outcome **serially in first-enqueued
    /// order**. The commit phase is the only part that touches the
    /// fabric — whose fault schedule consumes RNG per operation — so
    /// the event stream, and with it `RunReport`, is bit-identical at
    /// any worker count (DESIGN.md §10).
    fn dedup_flush(&mut self, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        self.flush_armed = false;
        if self.pending_dedups.is_empty() {
            return;
        }
        let Some(medes) = self.medes.clone() else {
            return;
        };
        let pending = std::mem::take(&mut self.pending_dedups);
        struct BatchItem {
            id: SandboxId,
            func: FnId,
            node: NodeId,
            image: Arc<MemoryImage>,
        }
        let mut items: Vec<BatchItem> = Vec::with_capacity(pending.len());
        for (id, epoch) in pending {
            let Some(sb) = self.sandboxes.get(&id) else {
                continue; // crash-purged while queued
            };
            if sb.epoch != epoch || sb.state != SandboxState::Deduping {
                continue;
            }
            items.push(BatchItem {
                id,
                func: sb.func,
                node: sb.node,
                image: self.factory.image_v(sb.func, sb.instance_seed, sb.version),
            });
        }
        if items.is_empty() {
            return;
        }

        // Parallel compute phase. Static contiguous chunking into
        // disjoint output slots: no locks, no unsafe, and the result
        // vector is in enqueue order regardless of which worker ran
        // which chunk. All captures are shared borrows — the registry
        // takes shard read locks internally.
        let cfg = &self.cfg;
        let registry = &self.registry;
        let bases = &self.bases;
        let resolve = |bid: SandboxId| bases.get(&bid).map(|(bf, img)| (Arc::clone(img), *bf));
        let resolve = &resolve;
        let workers = cfg.pipeline.workers.min(items.len()).max(1);
        let wall_start = std::time::Instant::now();
        let mut scans: Vec<Option<DedupScan>> = Vec::new();
        if workers <= 1 {
            for it in &items {
                scans.push(Some(dedup_scan(
                    cfg, registry, it.node, it.func, &it.image, resolve,
                )));
            }
        } else {
            scans.resize_with(items.len(), || None);
            let chunk = items.len().div_ceil(workers);
            std::thread::scope(|s| {
                for (inp, out) in items.chunks(chunk).zip(scans.chunks_mut(chunk)) {
                    s.spawn(move || {
                        for (it, slot) in inp.iter().zip(out.iter_mut()) {
                            *slot = Some(dedup_scan(
                                cfg, registry, it.node, it.func, &it.image, resolve,
                            ));
                        }
                    });
                }
            });
        }
        let wall_us = wall_start.elapsed().as_micros() as u64;

        self.metrics.report.dedup_batches += 1;
        self.metrics.report.dedup_batch_peak =
            self.metrics.report.dedup_batch_peak.max(items.len() as u64);
        if self.obs.enabled() {
            self.obs
                .span("medes.dedup.batch", now)
                .attr("size", items.len().to_string())
                .attr("workers", workers.to_string())
                .attr("shards", self.registry.shard_count().to_string())
                .end(now);
            self.obs.incr("medes.dedup.batches");
            self.obs
                .record("medes.dedup.batch_size", items.len() as u64);
            // Host wall time of the compute phase — deliberately an obs
            // counter, never a RunReport field, so report equality
            // across worker counts is unaffected.
            self.obs.counter_add("medes.dedup.batch_wall_us", wall_us);
        }

        // Serial merge in first-enqueued order: fabric accounting,
        // base-image pinning, DedupDone scheduling.
        for (item, scan) in items.into_iter().zip(scans) {
            let scan = scan.expect("every batch slot is filled");
            let f = item.func.0;
            let droot =
                self.obs
                    .trace_root("dedup", self.cfg.seed, self.dedup_trace_key(item.id, now));
            let committed = {
                let mut fabric = self.fabric.with_ctx(DedupTiming::op_ctx(droot));
                dedup_commit(&self.cfg, &mut fabric, item.node, scan)
            };
            match committed {
                Ok(outcome) => {
                    outcome.timing.record(
                        &self.obs,
                        now,
                        &self.fns[f].profile.name,
                        self.cfg.to_paper_bytes(item.image.total_bytes()),
                        droot,
                        item.node.0,
                    );
                    // Pin the referenced bases *now*: the dedup table
                    // already points into them, and they must survive
                    // until DedupDone commits (or reverts) the state.
                    for base in &outcome.referenced_bases {
                        if let Some(b) = self.sandboxes.get_mut(base) {
                            b.refcount += 1;
                        }
                    }
                    let epoch = self.sandboxes[&item.id].epoch;
                    sched.after(
                        outcome.timing.total(),
                        Ev::DedupDone {
                            sb: item.id,
                            epoch,
                            outcome: Box::new(outcome),
                        },
                    );
                }
                Err(_) => {
                    // Same abort path as the serial dedup: keep the
                    // sandbox warm and reconsider after an idle period.
                    debug_assert!(!self.cfg.faults.is_empty());
                    self.obs.incr("medes.platform.dedup_aborts");
                    let sb = self.sandboxes.get_mut(&item.id).expect("exists");
                    sb.transition(SandboxState::Warm);
                    sb.last_used = now;
                    let epoch = sb.epoch;
                    self.fns[f].idle_warm.insert((now, item.id));
                    sched.after(
                        self.keep_alive_window(f),
                        Ev::KeepAliveExpire { sb: item.id, epoch },
                    );
                    if now + medes.idle_period <= self.horizon + medes.keep_alive {
                        sched.after(medes.idle_period, Ev::IdleCheck { sb: item.id, epoch });
                    }
                }
            }
        }
    }

    fn dedup_done(
        &mut self,
        id: SandboxId,
        epoch: u64,
        outcome: DedupOutcome,
        sched: &mut Scheduler<Ev>,
    ) {
        let now = sched.now();
        let Some(sb) = self.sandboxes.get(&id) else {
            // Crash-purged mid-dedup: drop the base pins taken at
            // initiation (the table was never attached to the sandbox).
            self.release_base_refs(&outcome.table);
            return;
        };
        if sb.epoch != epoch || sb.state != SandboxState::Deduping {
            return;
        }
        let f = sb.func.0;
        let node = sb.node;
        let full_model = outcome.table.entries.len() * medes_mem::PAGE_SIZE;
        let saved = outcome.saved_model_bytes();
        let medes = self.medes.clone().expect("dedup requires Medes policy");

        if sb.version < self.fn_version[f] {
            // A rolling deploy superseded this sandbox mid-dedup: drop
            // the outcome, release the base pins taken at initiation,
            // and purge instead of committing obsolete content.
            self.release_base_refs(&outcome.table);
            let sb = self.sandboxes.get_mut(&id).expect("exists");
            sb.transition(SandboxState::Warm);
            sb.last_used = now;
            self.purge_sandbox(now, id);
            self.metrics.report.version_purges += 1;
            self.obs.incr("medes.platform.version_purges");
            return;
        }

        if (saved as f64) < MIN_SAVING_FRAC * full_model as f64 {
            // Not worth it: return to warm; release the base pins taken
            // at dedup initiation.
            self.release_base_refs(&outcome.table);
            let sb = self.sandboxes.get_mut(&id).expect("exists");
            sb.transition(SandboxState::Warm);
            sb.last_used = now;
            let (lu, eid, fid) = (sb.last_used, sb.id, sb.func.0);
            self.fns[fid].idle_warm.insert((lu, eid));
            let epoch = self.sandboxes[&id].epoch;
            sched.after(
                self.keep_alive_window(f),
                Ev::KeepAliveExpire { sb: id, epoch },
            );
            if now + medes.idle_period <= self.horizon + medes.keep_alive {
                sched.after(medes.idle_period, Ev::IdleCheck { sb: id, epoch });
            }
            return;
        }

        // Commit the dedup state (base refcounts were taken at dedup
        // initiation).
        let new_paper = self
            .cfg
            .to_paper_bytes(outcome.table.resident_model_bytes());
        let stats = &mut self.metrics.report.dedup_stats[f];
        stats.dedup_ops += 1;
        let n = stats.dedup_ops;
        let saved_paper = self.cfg.to_paper_bytes(saved) as f64;
        self.obs
            .counter_add("medes.dedup.saved_paper_bytes", saved_paper as u64);
        FnDedupStats::fold(&mut stats.mean_saved_paper_bytes, n, saved_paper);
        FnDedupStats::fold(&mut stats.mean_dedup_footprint, n, new_paper as f64);
        FnDedupStats::fold(
            &mut stats.mean_dedup_op_us,
            n,
            outcome.timing.total().as_micros() as f64,
        );
        let patched = outcome.table.patched_pages().max(1);
        FnDedupStats::fold(
            &mut stats.mean_patch_bytes,
            n,
            outcome.table.patch_bytes as f64 / patched as f64,
        );
        self.metrics.report.same_fn_pages += outcome.same_fn_pages as u64;
        self.metrics.report.cross_fn_pages += outcome.cross_fn_pages as u64;
        if !self.sandboxes[&id].ever_deduped {
            self.metrics.report.sandboxes_deduped += 1;
            self.sandboxes.get_mut(&id).expect("exists").ever_deduped = true;
        }
        self.fns[f].record_dedup_footprint(new_paper);

        let sb = self.sandboxes.get_mut(&id).expect("exists");
        let delta = new_paper as i64 - sb.mem_paper_bytes as i64;
        sb.mem_paper_bytes = new_paper;
        sb.dedup_table = Some(outcome.table);
        sb.transition(SandboxState::Dedup);
        sb.last_used = now;
        let epoch = sb.epoch;
        self.charge(now, node, delta);
        self.fns[f].dedup_total += 1;
        self.fns[f].idle_dedup.insert((now, id));
        sched.after(medes.keep_dedup, Ev::KeepDedupExpire { sb: id, epoch });
    }

    // ------------------------------------------------------------------
    // Finish.
    // ------------------------------------------------------------------

    fn finish(mut self, end: SimTime) -> RunReport {
        self.metrics.report.registry_entries = self.registry.entries();
        self.metrics.report.registry_peak_entries = self.registry.peak_entries();
        self.metrics.report.registry_peak_bytes = self.registry.peak_mem_bytes();
        self.metrics.report.registry_bytes = self.registry.mem_bytes();
        self.metrics.report.registry_lookups = self.registry.lookups();
        self.metrics.report.rdma_bytes = self.fabric.stats().rdma_bytes;
        let fstats = self.fabric.stats();
        self.metrics.report.net_retries = fstats.retries;
        self.metrics.report.net_failures = fstats.rdma_failures + fstats.rpc_failures;
        self.metrics.report.registry_dead_node_locs = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].down)
            .map(|i| self.registry.locs_on_node(NodeId(i)))
            .sum();
        if self.obs.enabled() {
            // Registry RPC traffic and ownership hygiene are exported
            // as obs counters, never RunReport fields: the report must
            // stay bit-identical across registry placements, while the
            // overhead figures (§7.7) remain observable per run.
            let rstats = self.registry.rpc_stats();
            self.obs
                .counter_add("medes.registry.rpc_total", rstats.rpcs);
            self.obs
                .counter_add("medes.registry.rpc_bytes_total", rstats.rpc_bytes);
            self.obs.counter_add(
                "medes.registry.rpc_time_us",
                self.registry.rpc_time().as_micros(),
            );
            let dead_owner_entries: usize = (0..self.nodes.len())
                .filter(|&i| self.nodes[i].down)
                .map(|i| self.registry.entries_owned_by(NodeId(i)))
                .sum();
            self.obs.counter_add(
                "medes.registry.dead_owner_entries",
                dead_owner_entries as u64,
            );
        }
        for c in &self.caches {
            let s = c.stats();
            self.metrics.report.cache_hits += s.hits;
            self.metrics.report.cache_misses += s.misses;
            self.metrics.report.cache_evictions += s.evictions;
            self.metrics.report.cache_invalidations += s.invalidations;
            self.metrics.report.cache_bytes_saved += s.bytes_saved;
        }
        let mut report = self.metrics.finish(end);
        report.requests.sort_by_key(|r| r.id);
        report
    }
}

/// Cloning helper: the restore path needs the table while the sandbox
/// stays borrowed; tables are modest (patches), and restores are on the
/// critical path of a single request, so a clone is acceptable and keeps
/// the borrow checker trivial.
trait CloneForRestore {
    fn clone_for_restore(&self) -> Option<crate::sandbox::DedupPageTable>;
}

impl CloneForRestore for Option<crate::sandbox::DedupPageTable> {
    fn clone_for_restore(&self) -> Option<crate::sandbox::DedupPageTable> {
        self.clone()
    }
}

impl World for Cluster {
    type Event = Ev;

    fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
        let now = sched.now();
        // Fault windows are evaluated at the fabric's current instant;
        // the registry backend prices its RPCs at the same instant.
        self.fabric.set_now(now);
        self.registry.set_now(now);
        match event {
            Ev::Arrival { id, func } => {
                self.obs.incr("medes.platform.arrivals");
                self.fns[func].on_arrival();
                if let Some(a) = &mut self.adaptive_ka {
                    a.on_request(func, now);
                }
                let req = ReqInfo {
                    id,
                    func,
                    arrival: now,
                };
                self.dispatch(req, sched);
            }

            Ev::SpawnDone { sb: id, req } => {
                if !self.sandboxes.contains_key(&id) {
                    // The node crashed while the sandbox was spawning.
                    self.reschedule(req, sched);
                    return;
                }
                let exec = self.sample_exec(req.func);
                let sb = self
                    .sandboxes
                    .get_mut(&id)
                    .expect("spawning sandbox exists");
                sb.transition(SandboxState::Running);
                let startup = now.since(req.arrival);
                let rec = RequestRecord {
                    id: req.id,
                    func: req.func,
                    arrival_us: req.arrival.as_micros(),
                    startup_us: startup.as_micros(),
                    exec_us: exec.as_micros(),
                    e2e_us: 0,
                    start: StartType::Cold,
                };
                sched.after(exec, Ev::ExecDone { sb: id, rec });
            }

            Ev::RestoreDone {
                sb: id,
                req,
                read_paper,
            } => {
                if !self.sandboxes.contains_key(&id) {
                    // The node crashed mid-restore (crash_purge already
                    // settled the dedup accounting and base refs).
                    self.reschedule(req, sched);
                    return;
                }
                let f = req.func;
                let m_w = self.fns[f].profile.memory_bytes;
                let exec = self.sample_exec(f);
                let sb = self
                    .sandboxes
                    .get_mut(&id)
                    .expect("restoring sandbox exists");
                debug_assert_eq!(sb.state, SandboxState::Restoring);
                // Release the dedup representation + transient reads.
                let table = sb.dedup_table.take();
                let node = sb.node;
                let delta = m_w as i64 - sb.mem_paper_bytes as i64;
                sb.mem_paper_bytes = m_w;
                sb.transition(SandboxState::Running);
                self.charge(now, node, delta);
                let _ = read_paper;
                if let Some(t) = table {
                    self.release_base_refs(&t);
                }
                self.fns[f].dedup_total -= 1;
                let startup = now.since(req.arrival);
                let rec = RequestRecord {
                    id: req.id,
                    func: f,
                    arrival_us: req.arrival.as_micros(),
                    startup_us: startup.as_micros(),
                    exec_us: exec.as_micros(),
                    e2e_us: 0,
                    start: StartType::Dedup,
                };
                sched.after(exec, Ev::ExecDone { sb: id, rec });
            }

            Ev::ExecDone { sb: id, mut rec } => {
                if !self.sandboxes.contains_key(&id) {
                    // The node crashed while the request executed: the
                    // request never completed, so re-dispatch it.
                    self.reschedule(
                        ReqInfo {
                            id: rec.id,
                            func: rec.func,
                            arrival: SimTime::from_micros(rec.arrival_us),
                        },
                        sched,
                    );
                    return;
                }
                rec.e2e_us = now.since(SimTime::from_micros(rec.arrival_us)).as_micros();
                // Same (seed, request id) → same ids as the context the
                // dispatcher minted for the restore op, so the request
                // span becomes the root of that tree.
                let root = self.obs.trace_root("request", self.cfg.seed, rec.id);
                let bound_us = self.slo_bound_us(rec.func);
                let served_on = self.sandboxes[&id].node;
                self.metrics.push_request(rec, root, bound_us, served_on.0);
                let sb = self.sandboxes.get_mut(&id).expect("running sandbox exists");
                sb.transition(SandboxState::Warm);
                sb.last_used = now;
                let epoch = sb.epoch;
                let f = sb.func.0;
                // A rolling deploy superseded this sandbox while it ran:
                // its content is obsolete, so it dies instead of joining
                // the warm pool (referenced stale bases must linger until
                // their dependants release them).
                let stale = sb.version < self.fn_version[f] && !(sb.is_base && sb.refcount > 0);
                if stale {
                    self.purge_sandbox(now, id);
                    self.metrics.report.version_purges += 1;
                    self.obs.incr("medes.platform.version_purges");
                } else {
                    self.fns[f].idle_warm.insert((now, id));
                    sched.after(
                        self.keep_alive_window(f),
                        Ev::KeepAliveExpire { sb: id, epoch },
                    );
                    if let Some(m) = &self.medes {
                        if now + m.idle_period <= self.horizon + m.keep_alive {
                            sched.after(m.idle_period, Ev::IdleCheck { sb: id, epoch });
                        }
                    }
                }
                // Serve a queued request with this freshly warm sandbox.
                if let Some(q) = self.fns[f].wait_queue.pop_front() {
                    self.dispatch(
                        ReqInfo {
                            id: q.id,
                            func: f,
                            arrival: q.arrival,
                        },
                        sched,
                    );
                }
            }

            Ev::IdleCheck { sb, epoch } => self.idle_check(sb, epoch, sched),

            Ev::KeepAliveExpire { sb: id, epoch } => {
                let Some(sb) = self.sandboxes.get(&id) else {
                    return;
                };
                if sb.epoch != epoch || sb.state != SandboxState::Warm {
                    return;
                }
                let f = sb.func.0;
                let window = self.keep_alive_window(f);
                let idle_for = now.since(sb.last_used);
                if idle_for < window {
                    sched.at(sb.last_used + window, Ev::KeepAliveExpire { sb: id, epoch });
                    return;
                }
                if sb.is_base && sb.refcount > 0 {
                    // Referenced base sandboxes cannot be purged;
                    // re-check after another window.
                    if now + window <= self.horizon + window + window {
                        sched.after(window, Ev::KeepAliveExpire { sb: id, epoch });
                    }
                    return;
                }
                self.purge_sandbox(now, id);
                self.metrics.push_expiration();
            }

            Ev::KeepDedupExpire { sb: id, epoch } => {
                let Some(sb) = self.sandboxes.get(&id) else {
                    return;
                };
                if sb.epoch != epoch || sb.state != SandboxState::Dedup {
                    return;
                }
                self.purge_sandbox(now, id);
                self.metrics.push_expiration();
            }

            Ev::DedupDone { sb, epoch, outcome } => self.dedup_done(sb, epoch, *outcome, sched),
            Ev::DedupFlush => self.dedup_flush(sched),

            Ev::PolicyTick => {
                let Some(medes) = self.medes.clone() else {
                    return;
                };
                // Memory-budget objectives divide the cluster budget by
                // arrival-rate share (§5.3).
                let budgets: Option<Vec<f64>> =
                    if let Objective::MemoryBudget { budget_bytes } = medes.objective {
                        let rates: Vec<f64> = self
                            .fns
                            .iter()
                            .map(|rt| rt.lambda_max(self.cfg.policy_tick))
                            .collect();
                        Some(medes_policy::medes::divide_budget(budget_bytes, &rates))
                    } else {
                        None
                    };
                for (i, rt) in self.fns.iter_mut().enumerate() {
                    rt.roll_tick();
                    let state = rt.function_state(self.cfg.policy_tick);
                    let mut cfg_i = medes.clone();
                    if let (Some(b), Objective::MemoryBudget { .. }) = (&budgets, medes.objective) {
                        cfg_i.objective = Objective::MemoryBudget { budget_bytes: b[i] };
                    }
                    rt.target = solve(&cfg_i, &state);
                }
                if now + self.cfg.policy_tick <= self.horizon {
                    sched.after(self.cfg.policy_tick, Ev::PolicyTick);
                }
            }

            Ev::SampleTick => {
                self.sample_tick(now);
                if let Some(interval) = self.obs.sample_interval() {
                    if now + interval <= self.horizon {
                        sched.after(interval, Ev::SampleTick);
                    }
                }
            }

            Ev::RetryQueue { func } => {
                // Exactly one retry chain per function: this timer is the
                // outstanding one; re-arm only if requests remain after
                // the dispatch attempt (which may re-queue the head).
                self.fns[func].retry_armed = false;
                if let Some(q) = self.fns[func].wait_queue.pop_front() {
                    self.dispatch(
                        ReqInfo {
                            id: q.id,
                            func,
                            arrival: q.arrival,
                        },
                        sched,
                    );
                }
                if !self.fns[func].wait_queue.is_empty() && !self.fns[func].retry_armed {
                    self.fns[func].retry_armed = true;
                    sched.after(QUEUE_RETRY, Ev::RetryQueue { func });
                }
            }

            Ev::NodeCrash { node } => self.node_crash(now, node),

            Ev::VersionBump { func, version } => self.version_bump(now, func, version),

            Ev::NodeRestart { node } => {
                if node < self.nodes.len() && self.nodes[node].down {
                    self.nodes[node].down = false;
                    self.metrics.report.node_restarts += 1;
                    self.obs.incr("medes.platform.node_restarts");
                    // The node rejoins the registry's owner candidate
                    // set (it reclaims no shards).
                    self.registry.on_node_restart(NodeId(node));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medes_trace::{azure_like_trace, functionbench_suite, TraceGenConfig};

    fn small_trace(secs: u64, scale: f64) -> (Vec<FunctionProfile>, Trace) {
        let suite: Vec<FunctionProfile> = functionbench_suite().into_iter().take(4).collect();
        let names: Vec<String> = suite.iter().map(|p| p.name.clone()).collect();
        let trace = azure_like_trace(
            &names,
            &TraceGenConfig {
                duration_secs: secs,
                scale,
                seed: 7,
                ..Default::default()
            },
        );
        (suite, trace)
    }

    #[test]
    fn every_request_completes() {
        let (suite, trace) = small_trace(120, 2.0);
        let report = Platform::new(PlatformConfig::small_test(), suite)
            .run(&trace)
            .report;
        assert_eq!(report.requests.len(), trace.len());
        assert!(report.requests.iter().all(|r| r.e2e_us >= r.exec_us));
    }

    #[test]
    fn runs_are_deterministic() {
        let (suite, trace) = small_trace(60, 2.0);
        let r1 = Platform::new(PlatformConfig::small_test(), suite.clone())
            .run(&trace)
            .report;
        let r2 = Platform::new(PlatformConfig::small_test(), suite)
            .run(&trace)
            .report;
        assert_eq!(r1.requests.len(), r2.requests.len());
        for (a, b) in r1.requests.iter().zip(&r2.requests) {
            assert_eq!(a.e2e_us, b.e2e_us);
            assert_eq!(a.start, b.start);
        }
        assert_eq!(r1.total_cold_starts(), r2.total_cold_starts());
    }

    #[test]
    fn first_request_is_a_cold_start_then_warm_reuse() {
        let (suite, trace) = small_trace(120, 2.0);
        let report = Platform::new(PlatformConfig::small_test(), suite)
            .run(&trace)
            .report;
        // The earliest request of each function must be cold.
        for f in 0..report.functions.len() {
            if let Some(first) = report
                .requests
                .iter()
                .filter(|r| r.func == f)
                .min_by_key(|r| r.arrival_us)
            {
                assert_eq!(first.start, StartType::Cold, "fn {f}");
            }
        }
        // With steady traffic there must be warm starts too.
        assert!(report.requests.iter().any(|r| r.start == StartType::Warm));
    }

    #[test]
    fn medes_produces_dedup_starts_under_pressure() {
        let (suite, trace) = small_trace(600, 10.0);
        let mut cfg = PlatformConfig::small_test();
        // A tight memory budget (P2) forces the optimizer to demand
        // dedup; a short idle period acts on it quickly.
        if let PolicyKind::Medes(m) = &mut cfg.policy {
            m.idle_period = SimDuration::from_secs(5);
            m.objective = medes_policy::medes::Objective::MemoryBudget {
                budget_bytes: 100e6,
            };
        }
        let report = Platform::new(cfg, suite).run(&trace).report;
        assert!(
            report.sandboxes_deduped > 0,
            "dedup ops must happen under pressure"
        );
        assert!(
            report.requests.iter().any(|r| r.start == StartType::Dedup),
            "dedup starts must serve requests"
        );
        assert!(report.registry_peak_entries > 0, "bases must be indexed");
    }

    #[test]
    fn baseline_policies_never_dedup() {
        let (suite, trace) = small_trace(120, 2.0);
        let cfg = PlatformConfig::small_test()
            .with_policy(PolicyKind::FixedKeepAlive(SimDuration::from_mins(10)));
        let report = Platform::new(cfg, suite).run(&trace).report;
        assert_eq!(report.sandboxes_deduped, 0);
        assert!(report.requests.iter().all(|r| r.start != StartType::Dedup));
    }

    #[test]
    fn memory_limit_is_respected() {
        let (suite, trace) = small_trace(600, 25.0);
        let mut cfg = PlatformConfig::small_test()
            .with_policy(PolicyKind::FixedKeepAlive(SimDuration::from_mins(10)));
        cfg.nodes = 2;
        cfg.node_mem_bytes = 100 << 20;
        let nodes = cfg.nodes;
        let limit = cfg.node_mem_bytes;
        let report = Platform::new(cfg, suite).run(&trace).report;
        // Memory samples must stay within cluster capacity (small slack
        // for transient restore overheads).
        let cap = (nodes * limit) as f64;
        for &(_, mem) in &report.mem_series {
            assert!(mem <= cap * 1.05, "memory {mem} exceeds capacity {cap}");
        }
        assert!(report.evictions > 0, "pressure must cause evictions");
    }

    #[test]
    fn obs_trace_matches_report_aggregates() {
        let (suite, trace) = small_trace(600, 10.0);
        let mut cfg = PlatformConfig::small_test();
        cfg.obs = medes_obs::ObsConfig::enabled();
        cfg.obs.span_buffer_cap = 1 << 20;
        if let PolicyKind::Medes(m) = &mut cfg.policy {
            m.idle_period = SimDuration::from_secs(5);
            m.objective = medes_policy::medes::Objective::MemoryBudget {
                budget_bytes: 100e6,
            };
        }
        let outcome = Platform::new(cfg, suite).run(&trace);
        let (report, obs) = (outcome.report, outcome.obs);
        assert_eq!(obs.spans_dropped(), 0, "buffer must hold the whole run");

        // Every request is mirrored into the start-type counters and as
        // a request span whose attrs match the report's records.
        let starts = obs.counter("medes.platform.starts.warm")
            + obs.counter("medes.platform.starts.dedup")
            + obs.counter("medes.platform.starts.cold");
        assert_eq!(starts, report.requests.len() as u64);
        assert_eq!(
            obs.counter("medes.platform.arrivals"),
            report.requests.len() as u64
        );

        // The JSONL export round-trips, and the per-phase restore
        // breakdown computed from spans matches the report's folded
        // means (Fig 8) within 1 µs.
        let spans = medes_obs::parse_jsonl(&obs.export_jsonl());
        let total_restores: u64 = report.dedup_stats.iter().map(|s| s.restores).sum();
        assert!(total_restores > 0, "run must contain dedup starts");
        for (span_name, pick) in [
            ("medes.restore.base_read", 0usize),
            ("medes.restore.page_compute", 1),
            ("medes.restore.ckpt", 2),
        ] {
            let durs: Vec<u64> = spans
                .iter()
                .filter(|s| s.name == span_name)
                .map(|s| s.dur_us())
                .collect();
            assert_eq!(durs.len() as u64, total_restores, "{span_name}");
            let span_mean = durs.iter().sum::<u64>() as f64 / durs.len() as f64;
            let report_mean = report
                .dedup_stats
                .iter()
                .map(|s| {
                    let m = [
                        s.mean_restore_us.0,
                        s.mean_restore_us.1,
                        s.mean_restore_us.2,
                    ][pick];
                    m * s.restores as f64
                })
                .sum::<f64>()
                / total_restores as f64;
            assert!(
                (span_mean - report_mean).abs() <= 1.0,
                "{span_name}: spans {span_mean} vs report {report_mean}"
            );
        }

        // Dedup-op spans agree with the op counter, and the registry's
        // own counters agree with the report.
        let dedup_ops: u64 = report.dedup_stats.iter().map(|s| s.dedup_ops).sum();
        assert!(
            obs.counter("medes.dedup.ops") >= dedup_ops,
            "every committed op was recorded"
        );
        assert_eq!(
            obs.counter("medes.registry.lookups"),
            report.registry_lookups
        );
    }

    #[test]
    fn disabled_obs_leaves_run_untouched() {
        let (suite, trace) = small_trace(60, 2.0);
        let cfg = PlatformConfig::small_test();
        assert!(!cfg.obs.enabled);
        let outcome = Platform::new(cfg, suite).run(&trace);
        let (report, obs) = (outcome.report, outcome.obs);
        assert!(!report.requests.is_empty());
        assert_eq!(obs.span_count(), 0);
        assert!(obs.metrics_snapshot().is_empty());
        assert!(outcome.slo.is_empty());
    }

    /// Tentpole: every restore op links under the request span minted
    /// from the same `(seed, request id)` root, its phase spans tile it
    /// exactly, and the checkpoint-resume span nests under the ckpt
    /// phase — the tree `trace analyze` reconstructs.
    #[test]
    fn causal_tree_links_restores_under_request_roots() {
        let (suite, trace) = small_trace(600, 10.0);
        let mut cfg = PlatformConfig::small_test();
        cfg.obs = medes_obs::ObsConfig::enabled();
        cfg.obs.span_buffer_cap = 1 << 20;
        if let PolicyKind::Medes(m) = &mut cfg.policy {
            m.idle_period = SimDuration::from_secs(5);
            m.objective = medes_policy::medes::Objective::MemoryBudget {
                budget_bytes: 100e6,
            };
        }
        let outcome = Platform::new(cfg, suite).run(&trace);
        let spans = outcome.obs.spans();
        let by_id: HashMap<u64, &medes_obs::SpanRecord> = spans
            .iter()
            .filter(|s| s.span_id != 0)
            .map(|s| (s.span_id, s))
            .collect();
        let ops: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "medes.restore.op")
            .collect();
        assert!(!ops.is_empty(), "run must contain restores");
        for op in &ops {
            assert_ne!(op.trace_id, 0, "restore ops are traced");
            let root = by_id
                .get(&op.parent_id)
                .expect("restore op's parent (the request span) was emitted");
            assert_eq!(root.name, "medes.platform.request");
            assert_eq!(root.trace_id, op.trace_id);
            assert_eq!(root.span_id, root.trace_id, "request spans are roots");
            // The phase children tile the op interval exactly, so
            // per-node self-times sum to the op duration.
            let tiled: u64 = spans
                .iter()
                .filter(|s| s.parent_id == op.span_id && s.name.starts_with("medes.restore."))
                .map(|s| s.dur_us())
                .sum();
            assert_eq!(tiled, op.dur_us(), "phases tile the restore op");
            assert!(op.start_us >= root.start_us && op.end_us <= root.end_us);
        }
        // The CRIU-resume span nests (exactly) inside the ckpt phase.
        let resumes: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "medes.ckpt.restore" && s.trace_id != 0)
            .collect();
        assert_eq!(resumes.len(), ops.len());
        for r in &resumes {
            let ckpt = by_id[&r.parent_id];
            assert_eq!(ckpt.name, "medes.restore.ckpt");
            assert_eq!((r.start_us, r.end_us), (ckpt.start_us, ckpt.end_us));
        }
        // Dedup ops root their own traces: their parent id is the trace
        // root the platform minted (no span of its own — `trace
        // analyze` promotes orphans to roots).
        let dops: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "medes.dedup.op")
            .collect();
        assert!(!dops.is_empty(), "run must contain dedup ops");
        for d in &dops {
            assert_ne!(d.trace_id, 0);
            assert_eq!(d.parent_id, d.trace_id, "dedup op hangs off its root ctx");
        }
    }

    /// Tentpole: per-function SLO rows on `RunOutcome` cover every
    /// request, carry the §5.2 `α·s_W` bound under the latency-target
    /// objective, and surface in the Prometheus exposition.
    #[test]
    fn slo_summary_reflects_latency_target_bounds() {
        let (suite, trace) = small_trace(120, 2.0);
        let mut cfg = PlatformConfig::small_test();
        cfg.obs = medes_obs::ObsConfig::enabled();
        assert!(matches!(
            &cfg.policy,
            PolicyKind::Medes(m) if matches!(m.objective, Objective::LatencyTarget { .. })
        ));
        let outcome = Platform::new(cfg, suite).run(&trace);
        assert!(!outcome.slo.is_empty());
        let total: u64 = outcome.slo.iter().map(|s| s.count).sum();
        assert_eq!(total, outcome.report.requests.len() as u64);
        for row in &outcome.slo {
            assert!(row.bound_us > 0, "{} must carry an α·s_W bound", row.func);
            assert!(row.violations <= row.count);
            assert!(row.p50_us <= row.p99_us);
        }
        // Cold starts exceed α·s_W, so a mixed run records violations,
        // mirrored into the gauge the collector maintains.
        let violations: u64 = outcome.slo.iter().map(|s| s.violations).sum();
        assert!(violations > 0, "cold starts must violate the bound");
        assert_eq!(outcome.obs.slo_violations(), violations);
        let prom = outcome.obs.export_prometheus();
        assert!(prom.contains("medes_slo_startup_us"));
        assert!(prom.contains("medes_slo_violations_total"));
    }

    /// Rolling deploys: bumps register, stale sandboxes are purged, and
    /// the epoch boundary costs cold starts and dedup savings relative
    /// to the same trace without deploys.
    #[test]
    fn version_bumps_purge_stale_sandboxes_and_cost_savings() {
        let (suite, trace) = small_trace(600, 10.0);
        let mut cfg = PlatformConfig::small_test();
        if let PolicyKind::Medes(m) = &mut cfg.policy {
            m.idle_period = SimDuration::from_secs(5);
            m.objective = medes_policy::medes::Objective::MemoryBudget {
                budget_bytes: 100e6,
            };
        }
        let baseline = Platform::new(cfg.clone(), suite.clone()).run(&trace).report;
        assert_eq!(baseline.version_bumps, 0);
        assert_eq!(baseline.version_purges, 0);

        // Deploy a new version of every function mid-run.
        cfg.deploys = medes_trace::DeploySchedule {
            bumps: (0..suite.len())
                .map(|f| medes_trace::VersionBump {
                    function: f,
                    at: SimTime::from_secs(300),
                    version: 1,
                })
                .collect(),
        };
        let deployed = Platform::new(cfg, suite).run(&trace).report;
        assert_eq!(deployed.version_bumps, 4, "every bump must register");
        assert!(deployed.version_purges > 0, "stale sandboxes must die");
        assert_eq!(deployed.requests.len(), trace.len());
        assert!(
            deployed.total_cold_starts() > baseline.total_cold_starts(),
            "invalidating warm pools must cost cold starts ({} vs {})",
            deployed.total_cold_starts(),
            baseline.total_cold_starts()
        );
        // Replays stay bit-identical with a deploy schedule in play.
        let mut cfg2 = PlatformConfig::small_test();
        if let PolicyKind::Medes(m) = &mut cfg2.policy {
            m.idle_period = SimDuration::from_secs(5);
            m.objective = medes_policy::medes::Objective::MemoryBudget {
                budget_bytes: 100e6,
            };
        }
        cfg2.deploys = medes_trace::DeploySchedule {
            bumps: (0..deployed.functions.len())
                .map(|f| medes_trace::VersionBump {
                    function: f,
                    at: SimTime::from_secs(300),
                    version: 1,
                })
                .collect(),
        };
        let (suite2, trace2) = small_trace(600, 10.0);
        let replay = Platform::new(cfg2, suite2).run(&trace2).report;
        assert_eq!(deployed, replay, "deploy runs must replay bit-identically");
    }

    /// Heterogeneous node memories: the run respects each node's own
    /// limit and the per-node free-memory accounting uses the profile.
    #[test]
    fn hetero_node_memory_profile_is_respected() {
        let (suite, trace) = small_trace(600, 15.0);
        let mut cfg = PlatformConfig::small_test()
            .with_policy(PolicyKind::FixedKeepAlive(SimDuration::from_mins(10)));
        cfg.nodes = 4;
        // One big node, two mid, one small (still fits the largest fn).
        cfg.node_mem_profile = vec![400 << 20, 200 << 20, 200 << 20, 100 << 20];
        let cap: usize = cfg.node_mem_profile.iter().sum();
        assert_eq!(cfg.cluster_mem_bytes(), cap);
        let report = Platform::new(cfg, suite).run(&trace).report;
        assert_eq!(report.requests.len(), trace.len());
        for &(_, mem) in &report.mem_series {
            assert!(
                mem <= cap as f64 * 1.05,
                "memory {mem} exceeds hetero capacity {cap}"
            );
        }
    }

    /// An empty deploy schedule and an empty memory profile must leave
    /// the default run byte-identical (the golden-path guard for the
    /// fig7/fig9/chaos experiments).
    #[test]
    fn empty_deploys_and_profile_match_default_run_exactly() {
        let (suite, trace) = small_trace(300, 5.0);
        let base = Platform::new(PlatformConfig::small_test(), suite.clone())
            .run(&trace)
            .report;
        let mut cfg = PlatformConfig::small_test();
        cfg.deploys = medes_trace::DeploySchedule::default();
        cfg.node_mem_profile = vec![cfg.node_mem_bytes; cfg.nodes];
        let explicit = Platform::new(cfg, suite).run(&trace).report;
        assert_eq!(base, explicit);
    }
}
