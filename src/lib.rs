//! # Medes — memory deduplication for serverless computing
//!
//! A from-scratch Rust reproduction of *"Memory Deduplication for
//! Serverless Computing with Medes"* (EuroSys 2022). Medes introduces a
//! third sandbox state — **dedup** — between warm (fast, memory-hungry)
//! and cold (free, seconds-slow): a deduplicated sandbox keeps only the
//! memory that is unique in the cluster, storing every other page as a
//! compact patch against a similar *base page*, and restores in a few
//! hundred milliseconds by fetching base pages over RDMA and applying
//! the patches.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | role |
//! |-------|------|
//! | [`sim`] | deterministic discrete-event kernel, RNG, statistics |
//! | [`hash`] | SHA-1, rolling Rabin windows, value-sampled fingerprints |
//! | [`delta`] | binary diff/patch (the Xdelta3 stand-in) |
//! | [`mem`] | sandbox memory images + the synthetic content model |
//! | [`ckpt`] | CRIU-like checkpoint/restore with the paper's timings |
//! | [`net`] | RDMA/RPC fabric cost model |
//! | [`obs`] | tracing/metrics layer: spans, streamed JSONL export, time series |
//! | [`trace`] | FunctionBench profiles + Azure-like workload generator |
//! | [`policy`] | fixed/adaptive keep-alive + the §5 Medes optimizer |
//! | [`platform`] | the full platform: controller, registry, dedup & restore ops |
//!
//! ## Quick start
//!
//! ```
//! use medes::platform::{Platform, PlatformConfig};
//! use medes::trace::{azure_like_trace, functionbench_suite, TraceGenConfig};
//!
//! // The ten FunctionBench functions of the paper's Tables 1-2.
//! let suite = functionbench_suite();
//! let names: Vec<String> = suite.iter().map(|p| p.name.clone()).collect();
//!
//! // A 60-second Azure-like arrival trace.
//! let trace = azure_like_trace(
//!     &names,
//!     &TraceGenConfig { duration_secs: 60, scale: 1.0, ..Default::default() },
//! );
//!
//! // Run it on a Medes cluster and inspect the outcome. `run` returns
//! // a `RunOutcome`: the report plus the observability handle.
//! let report = Platform::new(PlatformConfig::small_test(), suite).run(&trace).report;
//! println!(
//!     "{} requests, {} cold starts, {:.1}% sandboxes deduplicated",
//!     report.requests.len(),
//!     report.total_cold_starts(),
//!     100.0 * report.dedup_fraction()
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use medes_ckpt as ckpt;
pub use medes_core as platform;
pub use medes_delta as delta;
pub use medes_hash as hash;
pub use medes_mem as mem;
pub use medes_net as net;
pub use medes_obs as obs;
pub use medes_policy as policy;
pub use medes_sim as sim;
pub use medes_trace as trace;

/// The crate version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::platform::PlatformConfig::small_test();
        let _ = crate::trace::functionbench_suite();
        assert!(!crate::VERSION.is_empty());
    }
}
