//! Function memory specifications and the library catalog.
//!
//! A [`FunctionSpec`] describes *what* lives in a sandbox's memory: the
//! language runtime, the libraries the function imports (Table 1 of the
//! paper), and how much anonymous (heap) memory the function touches.
//! The builder in [`crate::image`] turns a spec plus an instance seed
//! into concrete bytes.

use medes_sim::rng::seed_from_bytes;

/// Identifies a shared library (or the language runtime) by name.
///
/// Two functions that import the same library get byte-identical library
/// regions (modulo ASLR pointers), which is the source of cross-function
/// redundancy the paper exploits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LibraryId(pub String);

impl LibraryId {
    /// Creates a library id from a name.
    pub fn new(name: &str) -> Self {
        LibraryId(name.to_string())
    }

    /// Stable content seed for this library.
    pub fn seed(&self) -> u64 {
        seed_from_bytes(self.0.as_bytes())
    }

    /// Footprint of the library's mapped code+data, in bytes, at paper
    /// scale. Known libraries get sizes roughly proportional to their
    /// real mapped footprints; unknown ones get a stable default.
    pub fn catalog_bytes(&self) -> usize {
        const MB: usize = 1 << 20;
        match self.0.as_str() {
            // The CPython runtime + stdlib that every sandbox maps.
            "python-runtime" => 6 * MB,
            "math" | "time" | "json" => MB / 2,
            "multiprocessing" => MB,
            "chameleon" => 2 * MB,
            "pyaes" => MB,
            "numpy" => 7 * MB,
            "pillow" => 4 * MB,
            "opencv" => 14 * MB,
            "sklearn-tfidf" => 6 * MB,
            "sklearn-lr" => 5 * MB,
            "pandas" => 9 * MB,
            "pytorch" => 28 * MB,
            _ => 2 * MB,
        }
    }
}

/// A function's memory composition.
#[derive(Debug, Clone)]
pub struct FunctionSpec {
    /// Function name (e.g. `"FeatureGen"`).
    pub name: String,
    /// Total resident memory at paper scale, in bytes (Table 2).
    pub memory_bytes: usize,
    /// Imported libraries. The python runtime is always included
    /// implicitly by the builder.
    pub libs: Vec<LibraryId>,
}

impl FunctionSpec {
    /// Creates a spec. `memory_bytes` is the sandbox's total footprint;
    /// the builder sizes the heap as whatever the runtime + libraries
    /// leave over (at least one page).
    pub fn new(name: &str, memory_bytes: usize, libs: &[&str]) -> Self {
        FunctionSpec {
            name: name.to_string(),
            memory_bytes,
            libs: libs.iter().map(|l| LibraryId::new(l)).collect(),
        }
    }

    /// Stable seed for function-specific content streams (heap layout,
    /// file mappings, stack).
    pub fn seed(&self) -> u64 {
        seed_from_bytes(self.name.as_bytes()) ^ 0xF00D_5EED_0000_0001
    }

    /// Total bytes mapped by the runtime and libraries, at paper scale.
    pub fn library_bytes(&self) -> usize {
        LibraryId::new("python-runtime").catalog_bytes()
            + self.libs.iter().map(|l| l.catalog_bytes()).sum::<usize>()
    }

    /// Bytes left over for anonymous memory (heap + stack + mappings).
    pub fn anon_bytes(&self) -> usize {
        self.memory_bytes
            .saturating_sub(self.library_bytes())
            .max(crate::page::PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_seeds_stable_and_distinct() {
        assert_eq!(
            LibraryId::new("numpy").seed(),
            LibraryId::new("numpy").seed()
        );
        assert_ne!(
            LibraryId::new("numpy").seed(),
            LibraryId::new("pandas").seed()
        );
    }

    #[test]
    fn catalog_known_and_unknown() {
        assert_eq!(LibraryId::new("pytorch").catalog_bytes(), 28 << 20);
        assert_eq!(LibraryId::new("some-lib").catalog_bytes(), 2 << 20);
    }

    #[test]
    fn spec_budgets() {
        let spec = FunctionSpec::new("LinAlg", 32 << 20, &["numpy", "time"]);
        // runtime 6MB + numpy 7MB + time 0.5MB = 13.5MB
        assert_eq!(spec.library_bytes(), (13 << 20) + (1 << 19));
        assert_eq!(spec.anon_bytes(), (32 << 20) - (13 << 20) - (1 << 19));
    }

    #[test]
    fn anon_bytes_never_zero() {
        let spec = FunctionSpec::new("Tiny", 1024, &["pytorch"]);
        assert_eq!(spec.anon_bytes(), crate::page::PAGE_SIZE);
    }

    #[test]
    fn function_seeds_distinct() {
        let a = FunctionSpec::new("A", 1 << 20, &[]);
        let b = FunctionSpec::new("B", 1 << 20, &[]);
        assert_ne!(a.seed(), b.seed());
    }
}
