//! Cross-crate tests for the streaming span sink and the sim-time
//! series sampler (DESIGN.md §12): turning both fully on must leave
//! the `RunReport` byte-identical, the streamed trace on disk must be
//! complete with exact drop accounting, and the streamed file must
//! match a buffered export byte-for-byte when the ring never
//! overflows.

use medes::obs::{parse_jsonl, parse_timeseries, ObsConfig};
use medes::platform::config::PlatformConfig;
use medes::platform::Platform;
use medes::trace::{azure_like_trace, functionbench_suite, FunctionProfile, Trace, TraceGenConfig};
use std::path::{Path, PathBuf};

fn workload() -> (Vec<FunctionProfile>, Trace) {
    let suite: Vec<FunctionProfile> = functionbench_suite().into_iter().take(4).collect();
    let names: Vec<String> = suite.iter().map(|p| p.name.clone()).collect();
    let trace = azure_like_trace(
        &names,
        &TraceGenConfig {
            duration_secs: 300,
            scale: 10.0,
            seed: 7,
            ..Default::default()
        },
    );
    (suite, trace)
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("medes-it-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Finds the exported `trace-<tag>-<seq>.jsonl` for a run tag — the
/// export sequence number is process-global, so tests cannot assume 0.
fn find_trace(dir: &Path, tag: &str) -> PathBuf {
    let prefix = format!("trace-{tag}-");
    std::fs::read_dir(dir)
        .expect("export dir exists")
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with(&prefix) && n.ends_with(".jsonl") && !n.contains(".timeseries")
            })
        })
        .expect("exported trace present")
}

fn streamed_config(dir: &Path, tag: &str, sample_ms: u64) -> PlatformConfig {
    let mut cfg = PlatformConfig::small_test();
    let mut oc = ObsConfig::enabled()
        .tagged(tag)
        .streamed()
        .sampled_every_ms(sample_ms);
    oc.set_export_dir(dir.to_path_buf());
    cfg.obs = oc;
    cfg
}

/// Streaming spans to disk and sampling time series every 500 sim-ms
/// must not move a single byte of the `RunReport`; the disk trace must
/// hold every streamed span and the series must be strictly
/// time-ordered.
#[test]
fn streaming_and_sampling_do_not_perturb_the_run() {
    let (suite, trace) = workload();
    let mut plain_cfg = PlatformConfig::small_test();
    plain_cfg.obs = ObsConfig::default();
    let plain = Platform::new(plain_cfg, suite.clone()).run(&trace).report;

    let dir = scratch_dir("stream");
    let outcome = Platform::new(streamed_config(&dir, "it-stream", 500), suite).run(&trace);
    assert_eq!(
        plain, outcome.report,
        "streaming + sampling must not perturb the simulation"
    );

    let obs = &outcome.obs;
    assert_eq!(
        obs.spans_streamed(),
        obs.span_count() as u64 + obs.spans_dropped(),
        "streamed accounting must close exactly"
    );
    let trace_path = find_trace(&dir, "it-stream");
    let text = std::fs::read_to_string(&trace_path).expect("streamed trace readable");
    assert_eq!(
        parse_jsonl(&text).len() as u64,
        obs.spans_streamed(),
        "disk trace must hold every streamed span"
    );

    let ts_text = std::fs::read_to_string(trace_path.with_extension("timeseries.jsonl"))
        .expect("timeseries exported next to the trace");
    let series = parse_timeseries(&ts_text);
    assert!(!series.is_empty(), "sampler must have produced series");
    for s in &series {
        assert!(
            s.points.windows(2).all(|w| w[0].0 < w[1].0),
            "{}: sample timestamps must be strictly increasing",
            s.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// With the default (never-overflowing) ring, the incrementally
/// streamed file and a buffered `write_trace` export of the same run
/// are the same bytes — streaming changes *when* lines are written,
/// never *what* is written.
#[test]
fn streamed_file_matches_buffered_export() {
    let (suite, trace) = workload();
    let dir = scratch_dir("bytes");

    let streamed = Platform::new(streamed_config(&dir, "it-bytes-s", 0), suite.clone()).run(&trace);
    assert_eq!(streamed.obs.spans_dropped(), 0, "ring must not overflow");

    let mut buffered_cfg = PlatformConfig::small_test();
    let mut oc = ObsConfig::enabled().tagged("it-bytes-b");
    oc.set_export_dir(dir.clone());
    buffered_cfg.obs = oc;
    Platform::new(buffered_cfg, suite).run(&trace);

    let s = std::fs::read(find_trace(&dir, "it-bytes-s")).expect("streamed file");
    let b = std::fs::read(find_trace(&dir, "it-bytes-b")).expect("buffered file");
    assert_eq!(
        s, b,
        "streamed and buffered exports of the same run must be byte-identical"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
