//! Page constants and helpers.

/// Page size: 4 KiB, matching x86-64 and the paper's elimination
/// granularity (§4.1.2).
pub const PAGE_SIZE: usize = 4096;

/// Rounds a byte count up to a whole number of pages.
pub fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

/// Rounds a byte count up to a page boundary.
pub fn page_align(bytes: usize) -> usize {
    pages_for(bytes) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_math() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(page_align(5000), 8192);
        assert_eq!(page_align(4096), 4096);
    }
}
