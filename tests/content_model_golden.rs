//! Golden default-off regression for the entropy-mixture content model.
//!
//! The mixture (`ContentModelConfig`) must be a strictly opt-in layer:
//! with it off — the default — every existing experiment regime
//! (fig7-style latency-target, fig9-style memory-budget, chaos-style
//! fault injection) must produce a `RunReport` byte-identical to one
//! from a config that never mentions the mixture at all. `RunReport`
//! derives `PartialEq` over every field — request records, memory
//! series, per-function stats, fault counters — so equality here is the
//! byte-identical guarantee. And turning the mixture on must actually
//! change the run, proving the knob is live rather than ignored.

use medes::mem::{ContentModel, ContentModelConfig};
use medes::platform::config::{PlatformConfig, PolicyKind};
use medes::platform::metrics::RunReport;
use medes::platform::Platform;
use medes::policy::medes::Objective;
use medes::sim::fault::{FaultPlan, NodeCrash};
use medes::sim::{SimDuration, SimTime};
use medes::trace::{azure_like_trace, functionbench_suite, FunctionProfile, Trace, TraceGenConfig};

fn workload(secs: u64) -> (Vec<FunctionProfile>, Trace) {
    let suite: Vec<FunctionProfile> = functionbench_suite().into_iter().take(4).collect();
    let names: Vec<String> = suite.iter().map(|p| p.name.clone()).collect();
    let trace = azure_like_trace(
        &names,
        &TraceGenConfig {
            duration_secs: secs,
            scale: 8.0,
            seed: 11,
            ..Default::default()
        },
    );
    (suite, trace)
}

/// fig7-style: Medes under the latency-target objective (P1).
fn latency_target_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::small_test();
    if let PolicyKind::Medes(m) = &mut cfg.policy {
        m.idle_period = SimDuration::from_secs(5);
        m.objective = Objective::LatencyTarget { alpha: 50.0 };
    }
    cfg
}

/// fig9-style: Medes under the memory-budget objective (P2).
fn memory_budget_config() -> PlatformConfig {
    let mut cfg = PlatformConfig::small_test();
    if let PolicyKind::Medes(m) = &mut cfg.policy {
        m.idle_period = SimDuration::from_secs(5);
        m.objective = Objective::MemoryBudget {
            budget_bytes: 100e6,
        };
    }
    cfg
}

/// chaos-style: the memory-budget config plus a node crash mid-trace.
fn chaos_config() -> PlatformConfig {
    let mut cfg = memory_budget_config();
    cfg.faults = FaultPlan {
        seed: 0xFA17,
        crashes: vec![NodeCrash {
            node: 0,
            at: SimTime::from_secs(200),
            restart: Some(SimTime::from_secs(300)),
        }],
        links: Vec::new(),
        rpc_drop_prob: 0.01,
    };
    cfg
}

fn run(cfg: PlatformConfig) -> RunReport {
    let (suite, trace) = workload(420);
    Platform::new(cfg, suite).run(&trace).report
}

fn assert_mixture_default_off(make: fn() -> PlatformConfig, regime: &str) {
    let golden = run(make());

    // Explicitly disabling the mixture must change nothing at all.
    let mut off = make();
    off.content.mixture = ContentModelConfig::disabled();
    assert_eq!(
        golden,
        run(off),
        "{regime}: explicit mixture-off must be byte-identical to the default"
    );

    // Turning it on must change the run — the knob is live.
    let mut on = make();
    on.content.mixture = ContentModelConfig::paper_calibrated();
    assert_ne!(
        golden,
        run(on),
        "{regime}: the mixture must actually alter page content"
    );
}

#[test]
fn mixture_defaults_to_disabled() {
    assert_eq!(
        ContentModelConfig::default(),
        ContentModelConfig::disabled()
    );
    assert!(!ContentModel::default().mixture.enabled);
    assert!(!PlatformConfig::paper_default().content.mixture.enabled);
}

#[test]
fn fig7_style_latency_target_is_mixture_invariant() {
    assert_mixture_default_off(latency_target_config, "fig7-style");
}

#[test]
fn fig9_style_memory_budget_is_mixture_invariant() {
    assert_mixture_default_off(memory_budget_config, "fig9-style");
}

#[test]
fn chaos_style_fault_run_is_mixture_invariant() {
    assert_mixture_default_off(chaos_config, "chaos-style");
}
