//! SHA-1, implemented from scratch (FIPS 180-4).
//!
//! The paper hashes every sampled 64 B chunk with SHA-1 before inserting
//! it into the fingerprint registry. SHA-1 is cryptographically broken
//! for signatures, but for content-addressing memory chunks (with a
//! byte-verify on match, as Medes does) it is exactly what the original
//! system used, so we reproduce it faithfully.

/// Incremental SHA-1 digest.
///
/// # Examples
///
/// ```
/// use medes_hash::Sha1;
///
/// // Standard test vector: SHA1("abc").
/// let d = Sha1::digest(b"abc");
/// assert_eq!(
///     hex(&d),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// fn hex(bytes: &[u8]) -> String {
///     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh digest.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buffer: [0u8; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// One-shot digest of exactly one 64-byte block — the dedup hot
    /// path (every sampled chunk is 64 B). Skips all incremental
    /// buffering: two compressions, the data block and a constant
    /// padding block (0x80, zeros, bit length 512). Bit-identical to
    /// `Sha1::digest` on the same bytes.
    pub fn digest64(block: &[u8; 64]) -> [u8; 20] {
        // Padding for a 64-byte message: 0x80 then zeros, with the
        // 64-bit big-endian bit length (512 = 0x0200) in the tail.
        const PAD64: [u8; 64] = {
            let mut b = [0u8; 64];
            b[0] = 0x80;
            b[62] = 0x02;
            b
        };
        let mut state = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];
        compress_block(&mut state, block);
        compress_block(&mut state, &PAD64);
        let mut out = [0u8; 20];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Feeds bytes into the digest.
    pub fn update(&mut self, mut data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        if self.buffered > 0 {
            let need = 64 - self.buffered;
            let take = need.min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            } else {
                // Call consumed entirely by the partial buffer.
                return;
            }
        }
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            let arr: [u8; 64] = block.try_into().expect("exact chunk");
            self.compress(&arr);
        }
        let rem = blocks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    /// Completes the digest and returns the 20-byte hash.
    pub fn finalize(mut self) -> [u8; 20] {
        let len_bits = self.length_bits;
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0x00]);
        }
        self.update_padding(&len_bits.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// `update` without advancing the message length (for padding only).
    fn update_padding(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }
}

/// One SHA-1 compression round: four constant-(f, k) loops of 20
/// rounds each over a 16-word circular schedule, instead of a
/// per-round `(f, k)` branch over an 80-word array. Same math as
/// FIPS 180-4 §6.1.2 — the round-function identities used below
/// (`Ch(b,c,d) = d ^ (b & (c ^ d))`, `Maj(b,c,d) = (b & c) | (d &
/// (b | c))`) are bitwise-equal to the spec's and cost one op less.
#[inline]
fn compress_block(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for (i, word) in w.iter_mut().enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    let [mut a, mut b, mut c, mut d, mut e] = *state;
    // W[t] = rotl1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16]); indices taken
    // mod 16 so the schedule lives in 16 words instead of 80.
    macro_rules! sched {
        ($t:expr) => {{
            let t = $t & 15;
            let next = (w[(t + 13) & 15] ^ w[(t + 8) & 15] ^ w[(t + 2) & 15] ^ w[t]).rotate_left(1);
            w[t] = next;
            next
        }};
    }
    macro_rules! round {
        ($f:expr, $k:expr, $wi:expr) => {{
            let temp = a
                .rotate_left(5)
                .wrapping_add($f)
                .wrapping_add(e)
                .wrapping_add($k)
                .wrapping_add($wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }};
    }
    for &wi in w.iter() {
        round!(d ^ (b & (c ^ d)), 0x5A827999, wi);
    }
    for t in 16..20 {
        round!(d ^ (b & (c ^ d)), 0x5A827999, sched!(t));
    }
    for t in 20..40 {
        round!(b ^ c ^ d, 0x6ED9EBA1, sched!(t));
    }
    for t in 40..60 {
        round!((b & c) | (d & (b | c)), 0x8F1BBCDC, sched!(t));
    }
    for t in 60..80 {
        round!(b ^ c ^ d, 0xCA62C1D6, sched!(t));
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha1::digest(&data), "split {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise messages straddling the 56-byte padding boundary.
        for len in 50..=70 {
            let data = vec![0xAAu8; len];
            let d1 = Sha1::digest(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn digest64_matches_general_path() {
        // The one-block fast path must be bit-identical to the
        // incremental path on every 64-byte input we throw at it.
        let mut rng = 0x5EEDu64;
        for _ in 0..64 {
            let mut block = [0u8; 64];
            for b in &mut block {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                *b = (rng >> 56) as u8;
            }
            assert_eq!(Sha1::digest64(&block), Sha1::digest(&block));
        }
        assert_eq!(Sha1::digest64(&[0u8; 64]), Sha1::digest(&[0u8; 64]));
        assert_eq!(Sha1::digest64(&[0xFF; 64]), Sha1::digest(&[0xFF; 64]));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        let a = Sha1::digest(b"chunk-a");
        let b = Sha1::digest(b"chunk-b");
        assert_ne!(a, b);
    }
}
