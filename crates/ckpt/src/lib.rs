//! # medes-ckpt — CRIU-like checkpoint/restore for sandboxes
//!
//! Medes converts a warm sandbox into a dedup sandbox by first taking a
//! **memory checkpoint** (the paper uses CRIU), deduplicating the dump,
//! and later restoring the sandbox from the reconstructed dump. Real
//! CRIU is a Linux-specific, privileged tool, so per `DESIGN.md` this
//! crate provides a faithful functional + timing model:
//!
//! * [`image::CheckpointImage`] — a process-tree + VMA + page-dump
//!   structure mirroring CRIU's image format, built from a
//!   [`medes_mem::MemoryImage`]; restore reproduces the exact bytes
//!   (verified in tests).
//! * [`timing::TimingModel`] — where the paper's measured costs live:
//!   full CRIU restores cost ~650 ms, while Medes's optimizations
//!   (pre-created namespaces/process tree, in-memory images) bring the
//!   memory-restore path down to ~140 ms (§4.2).
//! * [`store::ImageStore`] — the in-memory checkpoint store kept by each
//!   node's dedup agent, with byte accounting so the platform can report
//!   agent overheads (§7.7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod obs;
pub mod store;
pub mod timing;

pub use image::{CheckpointImage, ProcessSpec, VmaDesc};
pub use store::ImageStore;
pub use timing::{RestoreBreakdown, RestoreOptions, TimingModel};
