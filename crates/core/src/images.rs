//! The image factory: deterministic regeneration + caching.
//!
//! Sandbox memory images are pure functions of `(function, instance
//! seed)`, so the platform holds real bytes only where the system
//! semantically requires residency: **base sandbox images** (pinned, the
//! registry points into them) are cached here; everything else is
//! regenerated on demand.

use crate::ids::FnId;
use medes_mem::{AslrConfig, ContentModel, FunctionSpec, ImageBuilder, MemoryImage};
use medes_trace::FunctionProfile;
use std::collections::HashMap;
use std::sync::Arc;

/// Builds and caches sandbox memory images.
#[derive(Debug)]
pub struct ImageFactory {
    builders: Vec<ImageBuilder>,
    /// Pinned images (base sandboxes): key = (function, instance seed).
    pinned: HashMap<(usize, u64), Arc<MemoryImage>>,
}

impl ImageFactory {
    /// Creates a factory for the given function profiles.
    pub fn new(
        profiles: &[FunctionProfile],
        model: ContentModel,
        aslr: AslrConfig,
        mem_scale: usize,
    ) -> Self {
        let builders = profiles
            .iter()
            .map(|p| {
                let libs: Vec<&str> = p.libs.iter().map(|s| s.as_str()).collect();
                let spec = FunctionSpec::new(&p.name, p.memory_bytes, &libs);
                ImageBuilder::new(spec)
                    .with_model(model.clone())
                    .with_aslr(aslr)
                    .with_scale(mem_scale)
            })
            .collect();
        ImageFactory {
            builders,
            pinned: HashMap::new(),
        }
    }

    /// Number of functions.
    pub fn functions(&self) -> usize {
        self.builders.len()
    }

    /// Generates (or fetches, if pinned) the image for a sandbox.
    pub fn image(&self, func: FnId, instance_seed: u64) -> Arc<MemoryImage> {
        if let Some(img) = self.pinned.get(&(func.0, instance_seed)) {
            return Arc::clone(img);
        }
        Arc::new(self.builders[func.0].build(instance_seed))
    }

    /// Model-scale page count of a function's image (layout jitter keeps
    /// the page count constant, so any instance is representative).
    pub fn model_pages(&self, func: FnId) -> usize {
        // Sizes depend only on the spec, not the instance.
        self.builders[func.0].build(0).page_count()
    }

    /// Pins a base sandbox's image so the registry can reference its
    /// pages without regeneration cost.
    pub fn pin(&mut self, func: FnId, instance_seed: u64) -> Arc<MemoryImage> {
        let img = self.image(func, instance_seed);
        self.pinned
            .insert((func.0, instance_seed), Arc::clone(&img));
        img
    }

    /// Unpins a base sandbox's image.
    pub fn unpin(&mut self, func: FnId, instance_seed: u64) {
        self.pinned.remove(&(func.0, instance_seed));
    }

    /// Currently pinned images (≈ base sandboxes alive).
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medes_trace::functionbench_suite;

    fn factory() -> ImageFactory {
        ImageFactory::new(
            &functionbench_suite()[..3],
            ContentModel::default(),
            AslrConfig::DISABLED,
            256,
        )
    }

    #[test]
    fn images_are_deterministic() {
        let f = factory();
        let a = f.image(FnId(0), 7);
        let b = f.image(FnId(0), 7);
        assert_eq!(a.page_count(), b.page_count());
        assert_eq!(a.page(0), b.page(0));
    }

    #[test]
    fn pinning_caches() {
        let mut f = factory();
        assert_eq!(f.pinned_count(), 0);
        let img = f.pin(FnId(1), 3);
        assert_eq!(f.pinned_count(), 1);
        let again = f.image(FnId(1), 3);
        assert!(Arc::ptr_eq(&img, &again), "pinned image must be shared");
        f.unpin(FnId(1), 3);
        assert_eq!(f.pinned_count(), 0);
    }

    #[test]
    fn page_counts_track_function_size() {
        let f = factory();
        // Vanilla (17MB) < LinAlg (32MB).
        assert!(f.model_pages(FnId(0)) < f.model_pages(FnId(1)));
        assert_eq!(f.functions(), 3);
    }
}
