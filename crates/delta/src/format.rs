//! The patch format.
//!
//! A patch is a header plus an instruction stream. The serialized layout
//! (all integers LEB128 varints) is:
//!
//! ```text
//! magic "MDp1" | base_len | target_len | instr*
//! instr := 0x01 offset len          -- COPY from base
//!        | 0x02 len byte*           -- ADD literal bytes
//! ```
//!
//! The platform stores patches in memory, so the byte size of this
//! encoding *is* the dedup memory footprint of a page.

/// One delta instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// Copy `len` bytes from `offset` in the base buffer.
    Copy {
        /// Byte offset into the base.
        offset: u32,
        /// Number of bytes to copy.
        len: u32,
    },
    /// Append literal bytes.
    Add(Vec<u8>),
}

/// A complete patch: header + instructions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Patch {
    /// Length of the base buffer the patch was computed against.
    pub base_len: u32,
    /// Length of the reconstructed target.
    pub target_len: u32,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
}

const MAGIC: &[u8; 4] = b"MDp1";

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = data.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

impl Patch {
    /// Total bytes the target would occupy if stored verbatim.
    pub fn target_len(&self) -> usize {
        self.target_len as usize
    }

    /// Number of literal bytes carried by the patch.
    pub fn add_bytes(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Add(d) => d.len(),
                Instr::Copy { .. } => 0,
            })
            .sum()
    }

    /// Number of bytes covered by COPY instructions (i.e. bytes *saved*
    /// by referencing the base instead of storing them).
    pub fn copied_bytes(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Copy { len, .. } => *len as usize,
                Instr::Add(_) => 0,
            })
            .sum()
    }

    /// Exact size of [`Patch::to_bytes`] output, without allocating.
    pub fn serialized_size(&self) -> usize {
        let mut n = 4 + varint_len(self.base_len as u64) + varint_len(self.target_len as u64);
        for i in &self.instrs {
            n += match i {
                Instr::Copy { offset, len } => {
                    1 + varint_len(*offset as u64) + varint_len(*len as u64)
                }
                Instr::Add(d) => 1 + varint_len(d.len() as u64) + d.len(),
            };
        }
        n
    }

    /// Serializes the patch.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_size());
        out.extend_from_slice(MAGIC);
        push_varint(&mut out, self.base_len as u64);
        push_varint(&mut out, self.target_len as u64);
        for i in &self.instrs {
            match i {
                Instr::Copy { offset, len } => {
                    out.push(0x01);
                    push_varint(&mut out, *offset as u64);
                    push_varint(&mut out, *len as u64);
                }
                Instr::Add(d) => {
                    out.push(0x02);
                    push_varint(&mut out, d.len() as u64);
                    out.extend_from_slice(d);
                }
            }
        }
        debug_assert_eq!(out.len(), self.serialized_size());
        out
    }

    /// Parses a serialized patch (an owned deep copy; see [`PatchRef`]
    /// for the zero-copy view with identical validation).
    pub fn from_bytes(data: &[u8]) -> Result<Patch, ParseError> {
        Ok(PatchRef::from_bytes(data)?.to_patch())
    }
}

/// A zero-copy view over a serialized patch: the header is decoded,
/// the instruction stream is validated once up front and then iterated
/// *in place* — `ADD` literals borrow from the underlying wire buffer
/// instead of being copied into `Vec`s. Combined with
/// [`PatchRef::apply_into`](crate::apply), a page restore from stored
/// patch bytes touches no intermediate allocation at all.
#[derive(Debug, Clone, Copy)]
pub struct PatchRef<'a> {
    base_len: u32,
    target_len: u32,
    body: &'a [u8],
}

/// One borrowed instruction yielded by [`PatchRef::instrs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrRef<'a> {
    /// Copy `len` bytes from `offset` in the base buffer.
    Copy {
        /// Byte offset into the base.
        offset: u32,
        /// Number of bytes to copy.
        len: u32,
    },
    /// Append literal bytes (borrowed from the serialized patch).
    Add(&'a [u8]),
}

impl<'a> PatchRef<'a> {
    /// Parses the header and validates the whole instruction stream
    /// without allocating. Errors match [`Patch::from_bytes`] exactly
    /// (same variants, same stream-order precedence); after success,
    /// iteration is infallible.
    pub fn from_bytes(data: &'a [u8]) -> Result<Self, ParseError> {
        if data.len() < 4 || &data[..4] != MAGIC {
            return Err(ParseError::BadMagic);
        }
        let mut pos = 4;
        let base_len = read_varint(data, &mut pos).ok_or(ParseError::Truncated)? as u32;
        let target_len = read_varint(data, &mut pos).ok_or(ParseError::Truncated)? as u32;
        let body = &data[pos..];
        let mut check = InstrIter { data: body, pos: 0 };
        while check.next_checked()?.is_some() {}
        Ok(PatchRef {
            base_len,
            target_len,
            body,
        })
    }

    /// Length of the base buffer the patch was computed against.
    pub fn base_len(&self) -> u32 {
        self.base_len
    }

    /// Length of the reconstructed target.
    pub fn target_len(&self) -> u32 {
        self.target_len
    }

    /// Iterates the instruction stream in place.
    pub fn instrs(&self) -> InstrIter<'a> {
        InstrIter {
            data: self.body,
            pos: 0,
        }
    }

    /// Deep-copies the view into an owned [`Patch`].
    pub fn to_patch(&self) -> Patch {
        let instrs = self
            .instrs()
            .map(|i| match i {
                InstrRef::Copy { offset, len } => Instr::Copy { offset, len },
                InstrRef::Add(d) => Instr::Add(d.to_vec()),
            })
            .collect();
        Patch {
            base_len: self.base_len,
            target_len: self.target_len,
            instrs,
        }
    }
}

/// Iterator over the borrowed instructions of a [`PatchRef`].
#[derive(Debug, Clone)]
pub struct InstrIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> InstrIter<'a> {
    /// Fallible step used both for up-front validation and (through
    /// the infallible `Iterator` impl) for iteration afterwards.
    fn next_checked(&mut self) -> Result<Option<InstrRef<'a>>, ParseError> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let op = self.data[self.pos];
        self.pos += 1;
        match op {
            0x01 => {
                let offset =
                    read_varint(self.data, &mut self.pos).ok_or(ParseError::Truncated)? as u32;
                let len =
                    read_varint(self.data, &mut self.pos).ok_or(ParseError::Truncated)? as u32;
                Ok(Some(InstrRef::Copy { offset, len }))
            }
            0x02 => {
                let len =
                    read_varint(self.data, &mut self.pos).ok_or(ParseError::Truncated)? as usize;
                let end = self.pos.checked_add(len).ok_or(ParseError::Truncated)?;
                if end > self.data.len() {
                    return Err(ParseError::Truncated);
                }
                let slice = &self.data[self.pos..end];
                self.pos = end;
                Ok(Some(InstrRef::Add(slice)))
            }
            other => Err(ParseError::BadOpcode(other)),
        }
    }
}

impl<'a> Iterator for InstrIter<'a> {
    type Item = InstrRef<'a>;

    fn next(&mut self) -> Option<InstrRef<'a>> {
        match self.next_checked() {
            Ok(v) => v,
            Err(_) => {
                // Unreachable for iterators handed out by PatchRef:
                // the stream was validated at construction.
                debug_assert!(false, "iterating an unvalidated instruction stream");
                None
            }
        }
    }
}

/// Errors produced while parsing a serialized patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The magic bytes were missing or wrong.
    BadMagic,
    /// The buffer ended mid-field.
    Truncated,
    /// Unknown instruction opcode.
    BadOpcode(u8),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadMagic => write!(f, "bad patch magic"),
            ParseError::Truncated => write!(f, "patch truncated"),
            ParseError::BadOpcode(op) => write!(f, "unknown patch opcode {op:#04x}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_patch() -> Patch {
        Patch {
            base_len: 4096,
            target_len: 4096,
            instrs: vec![
                Instr::Copy {
                    offset: 0,
                    len: 1000,
                },
                Instr::Add(vec![1, 2, 3, 4, 5]),
                Instr::Copy {
                    offset: 1005,
                    len: 3091,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_serialization() {
        let p = sample_patch();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), p.serialized_size());
        assert_eq!(Patch::from_bytes(&bytes).unwrap(), p);
    }

    #[test]
    fn byte_accounting() {
        let p = sample_patch();
        assert_eq!(p.add_bytes(), 5);
        assert_eq!(p.copied_bytes(), 4091);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            Patch::from_bytes(b"nope").unwrap_err(),
            ParseError::BadMagic
        );
        assert_eq!(Patch::from_bytes(b"MD"), Err(ParseError::BadMagic));
        let mut bytes = sample_patch().to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert_eq!(
            Patch::from_bytes(&bytes).unwrap_err(),
            ParseError::Truncated
        );
        let mut bad_op = sample_patch().to_bytes();
        let n = bad_op.len();
        bad_op[n - 1] = 0x7F; // replace last varint byte so next parse... build explicit
        let mut explicit = b"MDp1".to_vec();
        explicit.push(0); // base_len 0
        explicit.push(0); // target_len 0
        explicit.push(0xEE); // bad opcode
        assert_eq!(
            Patch::from_bytes(&explicit).unwrap_err(),
            ParseError::BadOpcode(0xEE)
        );
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 16383, 16384, u32::MAX as u64] {
            let mut out = Vec::new();
            push_varint(&mut out, v);
            assert_eq!(out.len(), varint_len(v));
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), Some(v));
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn empty_patch_roundtrip() {
        let p = Patch::default();
        assert_eq!(Patch::from_bytes(&p.to_bytes()).unwrap(), p);
    }
}
