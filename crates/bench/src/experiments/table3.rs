//! Table 3 — percent memory savings per function environment (§7.3.1).
//!
//! Per function: one sandbox is deduplicated against a same-function
//! base plus a shared cross-function base pool, and the saved bytes are
//! reported as a percentage of the sandbox's footprint. The paper
//! reports 16–58 % depending on the function's library/heap mix.

use crate::common::ExpConfig;
use crate::report::{f, Report};
use medes_core::config::PlatformConfig;
use medes_core::dedup::{dedup_op, index_base_sandbox};
use medes_core::ids::{FnId, NodeId, SandboxId};
use medes_core::images::ImageFactory;
use medes_core::registry::RegistryClient;
use medes_mem::{AslrConfig, ContentModel, MemoryImage};
use medes_net::Fabric;
use std::collections::HashMap;
use std::sync::Arc;

/// Paper reference savings (Table 3), percent.
const PAPER: &[(&str, f64)] = &[
    ("Vanilla", 27.06),
    ("LinAlg", 32.81),
    ("ImagePro", 43.03),
    ("VideoPro", 25.46),
    ("MapReduce", 15.94),
    ("HTMLServe", 44.30),
    ("AuthEnc", 21.48),
    ("FeatureGen", 38.89),
    ("RNNModel", 58.03),
    ("ModelTrain", 30.09),
];

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Report {
    let mut report = Report::new("table3", "percent memory savings per function environment");
    let suite = cfg.suite();
    let mut pcfg = PlatformConfig::paper_default();
    pcfg.mem_scale = cfg.mem_scale();
    let mut content = ContentModel::default();
    if cfg.content_model {
        content.mixture = medes_mem::ContentModelConfig::paper_calibrated();
    }
    let mut factory = ImageFactory::new(&suite, content, AslrConfig::DISABLED, pcfg.mem_scale);

    // A cluster-like base pool: one base sandbox per function, all
    // indexed — so cross-function RSCs are available exactly as on a
    // running platform.
    let registry = RegistryClient::new();
    let mut bases: HashMap<SandboxId, (FnId, Arc<MemoryImage>)> = HashMap::new();
    for (i, _) in suite.iter().enumerate() {
        let img = factory.pin(FnId(i), 5000 + i as u64);
        let id = SandboxId(i as u64);
        index_base_sandbox(&pcfg, &registry, NodeId(i % pcfg.nodes), id, &img);
        bases.insert(id, (FnId(i), img));
    }
    let resolver = |id: SandboxId| bases.get(&id).map(|(f, img)| (Arc::clone(img), *f));

    let mut fabric = Fabric::new(pcfg.nodes, pcfg.net.clone());
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut pcts: Vec<(String, f64)> = Vec::new();
    for (i, p) in suite.iter().enumerate() {
        let target = factory.image(FnId(i), 9000 + i as u64);
        let outcome = dedup_op(
            &pcfg,
            &registry,
            &mut fabric,
            NodeId(0),
            FnId(i),
            &target,
            &resolver,
        )
        .expect("dedup op on a fault-free fabric");
        let saved_frac = outcome.saved_model_bytes() as f64 / target.total_bytes() as f64;
        let saved_mb = saved_frac * p.memory_bytes as f64 / (1 << 20) as f64;
        let paper_pct = PAPER
            .iter()
            .find(|(n, _)| *n == p.name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        pcts.push((p.name.clone(), 100.0 * saved_frac));
        rows.push(vec![
            p.name.clone(),
            f(saved_mb, 2),
            f(100.0 * saved_frac, 1),
            f(paper_pct, 1),
        ]);
        json.push(medes_obs::json!({
            "function": p.name.clone(),
            "saved_mb": saved_mb,
            "saved_pct": 100.0 * saved_frac,
            "paper_pct": paper_pct,
        }));
    }
    report.table(&["function", "saved (MB)", "saved %", "paper %"], &rows);
    report.line("");
    report.line("paper: 16-58% depending on the function's library/heap composition");
    if cfg.content_model {
        // Under the entropy mixture the per-function savings must land
        // inside the paper's Table 3 band (16-58 %).
        for (name, pct) in &pcts {
            assert!(
                (16.0..=58.0).contains(pct),
                "mixture-on savings for {name} out of the paper band: {pct:.1}% not in 16-58%"
            );
        }
        report.line(&format!(
            "mixture on: all {} functions inside the paper's 16-58% band",
            pcts.len()
        ));
    }
    report.json_set("functions", medes_obs::Json::Array(json));
    report
}
