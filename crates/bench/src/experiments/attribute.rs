//! `attribute` — dimensional telemetry and tail-latency drill-down,
//! end to end.
//!
//! Three claims, each checked by assertion:
//!
//! 1. **Labels off changes nothing.** Two identical runs with
//!    telemetry on but labels off export byte-identical traces, and
//!    turning labels on produces the exact same [`RunReport`] — the
//!    dimensional layer observes the simulation, it never perturbs it.
//! 2. **Flat aggregates are exact sums.** With labels on, every flat
//!    counter equals the sum of its labeled twin series, and every
//!    histogram's count equals the sum of its labeled twins' counts —
//!    asserted generically over the whole labeled snapshot, so no
//!    call site can drift.
//! 3. **The drill-down names an injected slow node.** A latency-spike
//!    fault window (×[`SLOW_FACTOR`] on every RDMA read into one node)
//!    makes `trace attribute` rank that node as the top SLO
//!    attribution and resolve a critical path for its worst violation.
//!
//! [`RunReport`]: medes_core::metrics::RunReport

use super::obs_stream::find_trace;
use crate::attribute::attribute;
use crate::common::{run_outcome, ExpConfig};
use crate::report::Report;
use medes_core::config::PolicyKind;
use medes_obs::{Metric, ObsConfig};
use medes_policy::medes::Objective;
use medes_sim::fault::{FaultPlan, LinkFaultKind, LinkFaultWindow};
use medes_sim::SimTime;
use std::collections::BTreeMap;

/// The node whose inbound RDMA the fault window slows.
const SLOW_NODE: usize = 1;

/// Latency multiplier on reads into [`SLOW_NODE`]: large enough that
/// dedup restores served there overtake even the worst cold starts
/// (~1.5s) in the per-function violator rankings.
const SLOW_FACTOR: f64 = 150.0;

fn obs_cfg(cfg: &ExpConfig, tag: &str, labels: bool) -> ObsConfig {
    let mut oc = ObsConfig::enabled().tagged(tag);
    if labels {
        oc = oc.labeled();
    }
    oc.set_export_dir(cfg.results_dir.clone());
    oc
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Report {
    let mut report = Report::new("attribute", "dimensional metrics + tail-latency drill-down");
    let suite = cfg.suite();
    let trace = cfg.full_trace(&suite);
    let mut base = cfg.platform();
    base.policy = PolicyKind::Medes(cfg.medes_policy(Objective::LatencyTarget { alpha: 2.5 }));

    // Claim 1: label-off runs are deterministic to the byte, and
    // labels on produces the identical report.
    let off_a = {
        let mut c = base.clone();
        c.obs = obs_cfg(cfg, "attribute-off-a", false);
        run_outcome(c, &suite, &trace)
    };
    let off_b = {
        let mut c = base.clone();
        c.obs = obs_cfg(cfg, "attribute-off-b", false);
        run_outcome(c, &suite, &trace)
    };
    let text_a = std::fs::read_to_string(find_trace(&cfg.results_dir, "attribute-off-a"))
        .expect("label-off trace readable");
    let text_b = std::fs::read_to_string(find_trace(&cfg.results_dir, "attribute-off-b"))
        .expect("label-off trace readable");
    assert_eq!(
        text_a, text_b,
        "label-off exports must be byte-identical across runs"
    );
    assert!(
        !text_a.contains("\"labeled\""),
        "label-off tail must not carry a labeled key"
    );
    assert_eq!(
        off_a.report, off_b.report,
        "label-off runs must produce identical reports"
    );
    let on = {
        let mut c = base.clone();
        c.obs = obs_cfg(cfg, "attribute-on", true);
        run_outcome(c, &suite, &trace)
    };
    assert_eq!(
        off_a.report, on.report,
        "dimensional telemetry changed the simulation"
    );
    report.section("determinism");
    report.line(&format!(
        "label-off double run: byte-identical exports ({} bytes); labels on: identical \
         RunReport ({} requests)",
        text_a.len(),
        on.report.requests.len()
    ));

    // Claim 2: flat aggregates == sum of labeled series, generically.
    let labeled = on.obs.labeled_snapshot();
    assert!(
        !labeled.is_empty(),
        "labeled run recorded no labeled series"
    );
    let mut counter_sums: BTreeMap<&str, u64> = BTreeMap::new();
    let mut hist_counts: BTreeMap<&str, u64> = BTreeMap::new();
    for (name, _, m) in &labeled {
        match m {
            Metric::Counter(v) => *counter_sums.entry(name).or_default() += v,
            Metric::Hist(h) => *hist_counts.entry(name).or_default() += h.count(),
            Metric::Gauge(_) => {}
        }
    }
    for (name, sum) in &counter_sums {
        assert_eq!(
            on.obs.counter(name),
            *sum,
            "flat counter {name} must equal the sum of its labeled series"
        );
    }
    for (name, sum) in &hist_counts {
        let flat = on.obs.with_histogram(name, |h| h.count()).unwrap_or(0);
        assert_eq!(
            flat, *sum,
            "flat histogram {name} must hold the sum of its labeled counts"
        );
    }
    report.section("aggregation exactness");
    report.line(&format!(
        "{} labeled series across {} counter and {} histogram families; every flat \
         aggregate equals the sum of its series",
        labeled.len(),
        counter_sums.len(),
        hist_counts.len()
    ));

    // Claim 3: an injected slow node is named as the top attribution.
    let slow = {
        let mut c = base.clone();
        c.obs = obs_cfg(cfg, "attribute-slow", true);
        c.faults = FaultPlan {
            links: vec![LinkFaultWindow {
                src: None,
                dst: Some(SLOW_NODE),
                from: SimTime::ZERO,
                until: SimTime::from_secs(cfg.trace_secs()),
                kind: LinkFaultKind::LatencySpike {
                    factor: SLOW_FACTOR,
                },
            }],
            ..FaultPlan::default()
        };
        run_outcome(c, &suite, &trace)
    };
    assert!(
        slow.obs.slo_violations() > 0,
        "slow-node run must record SLO violations"
    );
    let trace_path = find_trace(&cfg.results_dir, "attribute-slow");
    let trace_text = std::fs::read_to_string(&trace_path).expect("slow trace readable");
    let prom_text =
        std::fs::read_to_string(trace_path.with_extension("prom")).expect("prom sibling exists");
    let name = trace_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let (drill, attributions) = attribute(&name, &prom_text, &trace_text, 10);
    assert!(
        !attributions.is_empty(),
        "slow-node run produced no attributions"
    );
    assert_eq!(
        attributions[0].kind, "slo-node",
        "top attribution must come from the SLO violator ranking"
    );
    assert_eq!(
        attributions[0].subject,
        format!("node {SLOW_NODE}"),
        "injected slow node must rank first: {attributions:?}"
    );
    assert!(
        drill.text().contains("critical path of worst violation"),
        "drill-down must resolve a critical path"
    );
    report.section(&format!(
        "injected slow node (x{SLOW_FACTOR} RDMA latency into node {SLOW_NODE})"
    ));
    let top: Vec<Vec<String>> = attributions
        .iter()
        .take(5)
        .map(|a| {
            vec![
                a.kind.to_string(),
                a.subject.clone(),
                crate::report::f(a.weight, 1),
            ]
        })
        .collect();
    report.table(&["kind", "subject", "weight"], &top);
    report.line(&format!(
        "trace attribute named node {SLOW_NODE} as top attribution \
         ({} attribution(s) total, critical path resolved)",
        attributions.len()
    ));

    report.json_set(
        "summary",
        medes_obs::json!({
            "label_off_bytes": text_a.len(),
            "labeled_series": labeled.len(),
            "counter_families": counter_sums.len(),
            "hist_families": hist_counts.len(),
            "slow_node": SLOW_NODE,
            "slow_factor": SLOW_FACTOR,
            "attributions": attributions.len(),
            "top_attribution": attributions[0].subject.as_str(),
        }),
    );
    report
}
