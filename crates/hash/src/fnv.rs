//! FNV-1a 64-bit — a cheap non-cryptographic hash.
//!
//! Used where hash quality only needs to be "good enough for a hash
//! table": interning library names, weak chunk pre-filters, and the
//! delta encoder's block index. Unlike SHA-1 it costs ~1 ns per word.

/// FNV-1a offset basis.
pub const OFFSET_BASIS: u64 = 0xCBF29CE484222325;
/// FNV-1a prime.
pub const PRIME: u64 = 0x100000001B3;

/// One-shot FNV-1a over `data`.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = OFFSET_BASIS;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Creates a hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(OFFSET_BASIS)
    }

    /// Feeds bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        // Reference values for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xCBF29CE484222325);
        assert_eq!(fnv1a(b"a"), 0xAF63DC4C8601EC8C);
        assert_eq!(fnv1a(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello fnv world";
        let mut h = Fnv1a::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finish(), fnv1a(data));
    }

    #[test]
    fn sensitivity_to_each_byte() {
        let base = fnv1a(b"0123456789");
        for i in 0..10 {
            let mut v = b"0123456789".to_vec();
            v[i] ^= 1;
            assert_ne!(fnv1a(&v), base, "byte {i}");
        }
    }
}
