//! `trace analyze`: causal-tree reconstruction and critical-path
//! profiling of a JSONL span trace exported by `medes-obs`.
//!
//! Where `trace summarize` aggregates spans *by name*, this module
//! uses the `trace_id`/`span_id`/`parent_id` fields to rebuild each
//! operation's **tree** — request → restore op → {base read → cache,
//! retries; page compute; ckpt → CRIU resume} — and then answers the
//! questions a flat breakdown cannot:
//!
//! * **critical path** per operation: the chain of last-ending spans
//!   from the root down, i.e. what actually gated completion;
//! * **self time** per phase: a span's duration minus the union of its
//!   children's intervals — time attributable to the phase itself.
//!   Because the platform's phase spans tile their parent exactly, the
//!   self times of a tree sum to its root's duration;
//! * **folded stacks**: `root;child;...;leaf self_us` lines, the input
//!   format of standard flamegraph renderers;
//! * **anomalies**: roots whose duration exceeds `k ×` the p99 of
//!   their kind — the ops worth pulling up individually.
//!
//! Spans whose parent never made it into the buffer (head-sampling of
//! an enclosing op, eviction, or a fault-aborted op that skipped its
//! phase records) are promoted to roots of their trace rather than
//! dropped, so a truncated trace still analyzes.

use crate::report::{f, Report};
use medes_obs::{parse_jsonl, ParsedSpan};
use medes_sim::stats::Percentiles;
use std::collections::{BTreeMap, HashMap};

/// One reconstructed causal tree (all spans sharing a `trace_id`).
#[derive(Debug)]
pub struct TraceTree {
    /// The shared trace id.
    pub trace_id: u64,
    /// Indices (into the forest's span slice) of this trace's roots:
    /// spans with no parent, plus orphans promoted to roots. Sorted by
    /// `(start_us, end_us, name)`.
    pub roots: Vec<usize>,
}

/// A forest of causal trees over one parsed span slice.
#[derive(Debug)]
pub struct Forest {
    /// Trees sorted by first root start time (ties: trace id).
    pub trees: Vec<TraceTree>,
    /// `children[i]` = indices of the spans parented under span `i`,
    /// sorted by `(start_us, end_us, name)`.
    children: Vec<Vec<usize>>,
    /// Spans with `trace_id == 0` (untraced flat records), excluded
    /// from every tree.
    pub untraced: usize,
}

impl Forest {
    /// Reconstructs the forest. Orphans (parent id set but no such
    /// span in the trace) become roots; a duplicate span id keeps the
    /// first occurrence as the parent target (later duplicates still
    /// appear as nodes).
    pub fn build(spans: &[ParsedSpan]) -> Forest {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut by_trace: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut untraced = 0usize;
        for (i, s) in spans.iter().enumerate() {
            if s.trace_id == 0 {
                untraced += 1;
                continue;
            }
            by_trace.entry(s.trace_id).or_default().push(i);
        }
        let order = |&a: &usize, &b: &usize| {
            let (x, y) = (&spans[a], &spans[b]);
            (x.start_us, x.end_us, &x.name).cmp(&(y.start_us, y.end_us, &y.name))
        };
        let mut trees: Vec<TraceTree> = Vec::with_capacity(by_trace.len());
        for (trace_id, members) in by_trace {
            let mut by_id: HashMap<u64, usize> = HashMap::with_capacity(members.len());
            for &i in &members {
                by_id.entry(spans[i].span_id).or_insert(i);
            }
            let mut roots = Vec::new();
            for &i in &members {
                let p = spans[i].parent_id;
                match by_id.get(&p) {
                    Some(&pi) if p != 0 && pi != i => children[pi].push(i),
                    _ => roots.push(i),
                }
            }
            roots.sort_by(order);
            trees.push(TraceTree { trace_id, roots });
        }
        for c in &mut children {
            c.sort_by(order);
        }
        trees.sort_by_key(|t| {
            (
                t.roots.first().map(|&r| spans[r].start_us).unwrap_or(0),
                t.trace_id,
            )
        });
        Forest {
            trees,
            children,
            untraced,
        }
    }

    /// The children of span `i`, in start order.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Self time of span `i`: its duration minus the union of its
    /// children's intervals (clipped to the span). Time spent in a
    /// phase itself, as opposed to waiting on sub-phases.
    pub fn self_time_us(&self, spans: &[ParsedSpan], i: usize) -> u64 {
        let s = &spans[i];
        let mut ivs: Vec<(u64, u64)> = self.children[i]
            .iter()
            .map(|&c| {
                (
                    spans[c].start_us.max(s.start_us),
                    spans[c].end_us.min(s.end_us),
                )
            })
            .filter(|&(a, b)| b > a)
            .collect();
        ivs.sort_unstable();
        let mut covered = 0u64;
        let mut cursor = s.start_us;
        for (a, b) in ivs {
            let a = a.max(cursor);
            if b > a {
                covered += b - a;
                cursor = b;
            }
        }
        s.dur_us().saturating_sub(covered)
    }

    /// The critical path from root `i` down: at every node, descend
    /// into the **last-ending** child (ties: later start, then name) —
    /// the chain of spans that gated the operation's completion.
    /// Always non-empty (contains at least the root).
    pub fn critical_path(&self, spans: &[ParsedSpan], i: usize) -> Vec<usize> {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(&next) = self.children[cur].iter().max_by(|&&a, &&b| {
            let (x, y) = (&spans[a], &spans[b]);
            (x.end_us, x.start_us, &x.name).cmp(&(y.end_us, y.start_us, &y.name))
        }) {
            path.push(next);
            cur = next;
        }
        path
    }

    /// Folded-stack lines (`root;child;…;leaf self_us`), aggregated
    /// over every tree — the input format of flamegraph renderers.
    /// Deterministically sorted by stack string.
    pub fn folded_stacks(&self, spans: &[ParsedSpan]) -> BTreeMap<String, u64> {
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for tree in &self.trees {
            for &root in &tree.roots {
                let mut stack: Vec<usize> = vec![root];
                // Iterative DFS carrying the name path.
                let mut path: Vec<&str> = Vec::new();
                let mut depth: Vec<usize> = vec![0];
                while let Some(i) = stack.pop() {
                    let d = depth.pop().expect("depth tracks stack");
                    path.truncate(d);
                    path.push(&spans[i].name);
                    let self_us = self.self_time_us(spans, i);
                    if self_us > 0 {
                        *folded.entry(path.join(";")).or_default() += self_us;
                    }
                    // Push in reverse so children pop in start order.
                    for &c in self.children[i].iter().rev() {
                        stack.push(c);
                        depth.push(d + 1);
                    }
                }
            }
        }
        folded
    }
}

/// One root span flagged as anomalous: slower than `k ×` the p99 of
/// roots sharing its name.
#[derive(Debug)]
pub struct Anomaly {
    /// Index of the root span.
    pub root: usize,
    /// Its duration, µs.
    pub dur_us: u64,
    /// The p99 duration of roots with the same name, µs.
    pub p99_us: f64,
}

/// Flags anomalous roots across the forest (duration `> k × p99` of
/// same-named roots). With fewer than 10 samples of a name the p99 is
/// too noisy to flag against, so those names are skipped.
pub fn anomalies(forest: &Forest, spans: &[ParsedSpan], k: f64) -> Vec<Anomaly> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for t in &forest.trees {
        for &r in &t.roots {
            by_name.entry(&spans[r].name).or_default().push(r);
        }
    }
    let mut out = Vec::new();
    for roots in by_name.values() {
        if roots.len() < 10 {
            continue;
        }
        let mut pct = Percentiles::new();
        for &r in roots {
            pct.record(spans[r].dur_us() as f64);
        }
        let p99 = pct.quantile(0.99).unwrap_or(0.0);
        for &r in roots {
            if spans[r].dur_us() as f64 > k * p99 {
                out.push(Anomaly {
                    root: r,
                    dur_us: spans[r].dur_us(),
                    p99_us: p99,
                });
            }
        }
    }
    out.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.root.cmp(&b.root)));
    out
}

fn fmt_attr(span: &ParsedSpan, key: &str) -> String {
    span.attr(key)
        .map(|v| match v.as_str() {
            Some(t) => t.to_string(),
            None => v.to_string(),
        })
        .unwrap_or_else(|| "-".to_string())
}

/// Builds the analysis report for one JSONL trace, returning it with
/// the folded-stacks text (one `stack self_us` line per stack).
pub fn analyze(trace_name: &str, contents: &str, anomaly_k: f64, top: usize) -> (Report, String) {
    let spans = parse_jsonl(contents);
    let forest = Forest::build(&spans);
    let mut report = Report::new("trace-analyze", trace_name);
    report.line(&format!(
        "{} spans, {} untraced, {} causal trees",
        spans.len(),
        forest.untraced,
        forest.trees.len()
    ));
    report.json_set("spans", medes_obs::json!(spans.len()));
    report.json_set("trees", medes_obs::json!(forest.trees.len()));

    // Per-root-kind overview: count, mean/p99 duration, and how much
    // of the root's time the tree's self-times account for (1.0 when
    // phases tile their parents exactly).
    let mut kinds: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for t in &forest.trees {
        for &r in &t.roots {
            kinds.entry(&spans[r].name).or_default().push(r);
        }
    }
    report.section("operations (tree roots)");
    let rows: Vec<Vec<String>> = kinds
        .iter()
        .map(|(name, roots)| {
            let mut pct = Percentiles::new();
            let mut total = 0u64;
            let mut accounted = 0u64;
            for &r in roots {
                pct.record(spans[r].dur_us() as f64);
                total += spans[r].dur_us();
                accounted += tree_self_sum(&forest, &spans, r);
            }
            vec![
                name.to_string(),
                roots.len().to_string(),
                f(total as f64 / roots.len() as f64, 1),
                f(pct.quantile(0.99).unwrap_or(0.0), 1),
                f(accounted as f64 / (total.max(1)) as f64, 3),
            ]
        })
        .collect();
    report.table(
        &["op", "count", "mean_us", "p99_us", "self_coverage"],
        &rows,
    );

    // Critical path of the slowest instance of each op kind.
    report.section("critical path (slowest instance per op)");
    for (name, roots) in &kinds {
        let &slowest = roots
            .iter()
            .max_by_key(|&&r| (spans[r].dur_us(), std::cmp::Reverse(spans[r].start_us)))
            .expect("kind has roots");
        let path = forest.critical_path(&spans, slowest);
        report.line(&format!("{name} ({} us):", spans[slowest].dur_us()));
        for (depth, &i) in path.iter().enumerate() {
            report.line(&format!(
                "  {}{} dur={}us self={}us",
                "  ".repeat(depth),
                spans[i].name,
                spans[i].dur_us(),
                forest.self_time_us(&spans, i),
            ));
        }
    }

    // Per-phase self-time breakdown over every tree node: where the
    // time actually goes once child waits are subtracted out.
    let mut self_by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for t in &forest.trees {
        for &r in &t.roots {
            let mut stack = vec![r];
            while let Some(i) = stack.pop() {
                let e = self_by_name.entry(&spans[i].name).or_default();
                e.0 += 1;
                e.1 += forest.self_time_us(&spans, i);
                stack.extend_from_slice(forest.children(i));
            }
        }
    }
    let grand: u64 = self_by_name.values().map(|&(_, t)| t).sum();
    let mut phases: Vec<(&str, u64, u64)> = self_by_name
        .into_iter()
        .map(|(n, (c, t))| (n, c, t))
        .collect();
    phases.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    report.section("per-phase self time");
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|&(name, count, total)| {
            vec![
                name.to_string(),
                count.to_string(),
                f(total as f64 / 1e6, 3),
                f(100.0 * total as f64 / grand.max(1) as f64, 1),
            ]
        })
        .collect();
    report.table(&["phase", "count", "self_s", "self_%"], &rows);

    // Anomalies.
    let anom = anomalies(&forest, &spans, anomaly_k);
    report.json_set("anomalies", medes_obs::json!(anom.len()));
    if !anom.is_empty() {
        report.section(&format!(
            "anomalous ops (> {anomaly_k} x p99 of their kind; top {top})"
        ));
        let rows: Vec<Vec<String>> = anom
            .iter()
            .take(top)
            .map(|a| {
                let s = &spans[a.root];
                vec![
                    s.name.clone(),
                    fmt_attr(s, "id"),
                    fmt_attr(s, "fn"),
                    s.start_us.to_string(),
                    a.dur_us.to_string(),
                    f(a.p99_us, 1),
                ]
            })
            .collect();
        report.table(&["op", "id", "fn", "start_us", "dur_us", "p99_us"], &rows);
    }

    let folded = forest
        .folded_stacks(&spans)
        .into_iter()
        .map(|(stack, us)| format!("{stack} {us}\n"))
        .collect::<String>();
    (report, folded)
}

/// Sum of self times over the whole tree rooted at `r` — equals the
/// root's duration when every level's children tile their parent.
pub fn tree_self_sum(forest: &Forest, spans: &[ParsedSpan], r: usize) -> u64 {
    let mut sum = 0u64;
    let mut stack = vec![r];
    while let Some(i) = stack.pop() {
        sum += forest.self_time_us(spans, i);
        stack.extend_from_slice(forest.children(i));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use medes_obs::{Obs, ObsConfig};
    use medes_sim::SimTime;

    /// Emits a toy forest: two traced request trees (request → op →
    /// {a, b}) plus one untraced flat span.
    fn toy_trace() -> String {
        let obs = Obs::new(ObsConfig::enabled());
        let t = SimTime::from_micros;
        for req in 0..2u64 {
            let root = obs.trace_root("request", 1, req);
            let op = root.child("op", 0);
            let base = req * 1000;
            obs.span_in("phase.a", t(base), op.child("phase.a", 0))
                .end(t(base + 30));
            obs.span_in("phase.b", t(base + 30), op.child("phase.b", 0))
                .end(t(base + 100));
            obs.span_in("op", t(base), op).end(t(base + 100));
            obs.span_in("request", t(base), root).end(t(base + 140));
        }
        obs.span("flat", t(5)).end(t(6));
        obs.export_jsonl()
    }

    #[test]
    fn forest_reconstructs_trees_and_self_times() {
        let spans = parse_jsonl(&toy_trace());
        let forest = Forest::build(&spans);
        assert_eq!(forest.trees.len(), 2);
        assert_eq!(forest.untraced, 1);
        for tree in &forest.trees {
            assert_eq!(tree.roots.len(), 1);
            let root = tree.roots[0];
            assert_eq!(spans[root].name, "request");
            // request(140) = op(100) + 40 self; op = 30 + 70 children.
            assert_eq!(forest.self_time_us(&spans, root), 40);
            let op = forest.children(root)[0];
            assert_eq!(forest.self_time_us(&spans, op), 0);
            // The whole tree's self times sum to the root duration.
            assert_eq!(tree_self_sum(&forest, &spans, root), spans[root].dur_us());
            // Critical path follows the last-ending child chain.
            let path: Vec<&str> = forest
                .critical_path(&spans, root)
                .iter()
                .map(|&i| spans[i].name.as_str())
                .collect();
            assert_eq!(path, ["request", "op", "phase.b"]);
        }
    }

    #[test]
    fn orphans_are_promoted_to_roots() {
        let obs = Obs::new(ObsConfig::enabled());
        let t = SimTime::from_micros;
        let root = obs.trace_root("request", 9, 9);
        let op = root.child("op", 0);
        // Only a grandchild is emitted: its parent (`op`) is missing.
        obs.span_in("phase.a", t(0), op.child("phase.a", 0))
            .end(t(10));
        let spans = parse_jsonl(&obs.export_jsonl());
        let forest = Forest::build(&spans);
        assert_eq!(forest.trees.len(), 1);
        assert_eq!(forest.trees[0].roots.len(), 1);
        assert_eq!(spans[forest.trees[0].roots[0]].name, "phase.a");
    }

    #[test]
    fn folded_stacks_aggregate_identical_paths() {
        let spans = parse_jsonl(&toy_trace());
        let forest = Forest::build(&spans);
        let folded = forest.folded_stacks(&spans);
        // Two identical trees fold into one set of stacks, doubled.
        assert_eq!(folded.get("request").copied(), Some(80));
        assert_eq!(folded.get("request;op;phase.a").copied(), Some(60));
        assert_eq!(folded.get("request;op;phase.b").copied(), Some(140));
        // `op` has zero self time, so it never appears as a leaf line.
        assert_eq!(folded.get("request;op"), None);
    }

    #[test]
    fn anomalies_flag_slow_roots() {
        let obs = Obs::new(ObsConfig::enabled());
        let t = SimTime::from_micros;
        for i in 0..100u64 {
            let root = obs.trace_root("request", 3, i);
            let dur = if i == 99 { 10_000 } else { 100 };
            obs.span_in("request", t(i * 100_000), root)
                .end(t(i * 100_000 + dur));
        }
        let spans = parse_jsonl(&obs.export_jsonl());
        let forest = Forest::build(&spans);
        let anom = anomalies(&forest, &spans, 2.0);
        assert_eq!(anom.len(), 1);
        assert_eq!(anom[0].dur_us, 10_000);
        // Fewer than 10 samples of a kind are never flagged.
        assert!(anomalies(&Forest::build(&spans[..5]), &spans[..5], 2.0).is_empty());
    }

    #[test]
    fn analyze_renders_report_and_folded_output() {
        let (report, folded) = analyze("toy.jsonl", &toy_trace(), 2.0, 10);
        let text = report.text();
        assert!(text.contains("2 causal trees"));
        assert!(text.contains("critical path"));
        assert!(text.contains("per-phase self time"));
        assert!(folded.contains("request;op;phase.b 140"));
    }

    #[test]
    fn analyze_handles_empty_and_untraced_input() {
        let (report, folded) = analyze("empty", "", 2.0, 10);
        assert!(report.text().contains("0 spans"));
        assert!(folded.is_empty());
        // A purely untraced (pre-causal) trace yields zero trees.
        let obs = Obs::new(ObsConfig::enabled());
        obs.span("flat", SimTime::ZERO).end(SimTime::from_micros(5));
        let (report, _) = analyze("flat", &obs.export_jsonl(), 2.0, 10);
        assert!(report.text().contains("0 causal trees"));
    }
}
