//! `microbench` — p50/p95/p99 latency per hot-path op (renacer style).
//!
//! Criterion-compatible micro-benchmarks for the three compute-bound
//! ops the PR 8 hot-path work targets: fingerprint scan, delta encode,
//! and patch apply. Each op is sampled individually (one `Instant`
//! window per call, percentiles over the sorted samples — medians hide
//! tail behavior, which is exactly what the restore path cares about)
//! on a checkpoint-shaped corpus, for both the legacy path and the
//! optimized path:
//!
//! | op | legacy | optimized |
//! |----|--------|-----------|
//! | fingerprint | `page_fingerprint_scalar` | `page_fingerprint` (wide scan) / `pages_fingerprints` (batch) |
//! | encode | `encode_reference` (per-call `HashMap`) | `encode_with` (reused [`EncodeScratch`]) |
//! | apply | `apply` (allocating) | `apply_into` / `PatchRef::apply_into` (zero-copy) |
//!
//! The experiment is self-checking: every optimized-path result is
//! asserted bit-identical to its legacy counterpart on the whole
//! corpus, and a deterministic FNV digest over all fingerprints and
//! patch bytes is written to `<results>/microbench.digest` so CI can
//! double-run the experiment and `diff` the digests. In full mode the
//! speedup gates (≥1.5× fingerprint p50, ≥1.3× encode+apply pair) are
//! asserted too; quick mode only reports them, since smoke machines
//! are noisy. Per-op p50s are appended to `perf_history.jsonl` as
//! `microbench/<op>` records.

use crate::common::ExpConfig;
use crate::perf_history;
use crate::report::{f, Report};
use medes_ckpt::{CheckpointImage, ProcessSpec};
use medes_delta::{
    apply, apply_into, encode_reference, encode_with, EncodeConfig, EncodeScratch, Patch, PatchRef,
};
use medes_hash::fnv::fnv1a;
use medes_hash::sample::{
    page_fingerprint, page_fingerprint_scalar, pages_fingerprints, FingerprintConfig,
    PageFingerprint,
};
use medes_mem::{FunctionSpec, ImageBuilder};
use medes_obs::json::{Json, JsonMap};
use medes_sim::DetRng;
use std::time::Instant;

/// Percentile summary of one op's samples, nanoseconds.
#[derive(Debug, Clone, Copy)]
struct OpStats {
    p50: f64,
    p95: f64,
    p99: f64,
    samples: usize,
}

impl OpStats {
    /// Nearest-rank percentiles over the sorted samples.
    fn from_samples(mut ns: Vec<f64>) -> OpStats {
        assert!(!ns.is_empty());
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let pick = |q: f64| {
            let rank = ((q * ns.len() as f64).ceil() as usize).clamp(1, ns.len());
            ns[rank - 1]
        };
        OpStats {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
            samples: ns.len(),
        }
    }
}

/// Times `op` once per sample; the `u64` return value is folded into a
/// sink so the optimizer cannot elide the work.
fn measure<F: FnMut(usize) -> u64>(samples: usize, mut op: F) -> OpStats {
    let mut ns = Vec::with_capacity(samples);
    let mut sink = 0u64;
    for i in 0..samples {
        let t0 = Instant::now();
        sink = sink.wrapping_add(op(i));
        ns.push(t0.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(sink);
    OpStats::from_samples(ns)
}

/// The benchmark corpus: checkpoint pages plus near-duplicate
/// (base, target) page pairs — the shapes the dedup scan actually
/// encodes. Fully deterministic.
struct Corpus {
    pages: Vec<Vec<u8>>,
    pairs: Vec<(Vec<u8>, Vec<u8>)>,
}

fn build_corpus(quick: bool) -> Corpus {
    let ckpt = |name: &str, mb: usize, libs: &[&str], seed: u64| {
        let img = ImageBuilder::new(FunctionSpec::new(name, mb << 20, libs))
            .with_scale(16)
            .build(seed);
        CheckpointImage::from_image(&img, ProcessSpec::default())
    };
    let images = [
        ckpt("mb-json", 2, &["libc", "librt"], 1),
        ckpt("mb-ml", 4, &["libc", "libml"], 2),
    ];
    let mut pages: Vec<Vec<u8>> = Vec::new();
    for img in &images {
        pages.extend(img.page_slices().map(<[u8]>::to_vec));
    }
    let cap = if quick { 64 } else { 256 };
    pages.truncate(cap);
    // Near-duplicate pairs: point edits and a small insertion-style
    // splat, mirroring warm sandbox pages drifting from their base.
    let mut rng = DetRng::new(0x00B5_EED5);
    let mut pairs = Vec::new();
    for (i, page) in pages.iter().enumerate().take(cap / 2) {
        let base = page.clone();
        let mut target = base.clone();
        for _ in 0..rng.range(1, 6) {
            let at = rng.below(target.len() as u64 - 32) as usize;
            let len = rng.range(4, 32) as usize;
            for b in &mut target[at..at + len] {
                *b = rng.next_u8();
            }
        }
        if i % 4 == 3 {
            // Every fourth pair diffs against an unrelated page.
            rng.fill_bytes(&mut target);
        }
        pairs.push((base, target));
    }
    Corpus { pages, pairs }
}

/// Folds bytes into a running FNV-chain digest.
fn fold(acc: u64, bytes: &[u8]) -> u64 {
    acc.rotate_left(1) ^ fnv1a(bytes)
}

fn digest_fingerprints(fps: &[PageFingerprint]) -> u64 {
    let mut acc = 0xD16E_5700u64;
    for fp in fps {
        for c in fp.chunks() {
            acc = fold(acc, &c.offset.to_le_bytes());
            acc = fold(acc, &c.hash.to_le_bytes());
        }
    }
    acc
}

fn digest_patches(patches: &[Patch]) -> u64 {
    let mut acc = 0xD16E_5701u64;
    for p in patches {
        acc = fold(acc, &p.to_bytes());
    }
    acc
}

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Report {
    let mut report = Report::new("microbench", "hot-path op latency (p50/p95/p99 per op)");
    let corpus = build_corpus(cfg.quick);
    let fp_cfg = FingerprintConfig::default();
    let enc_cfg = EncodeConfig::with_level(1); // what the platform uses
    let n_pages = corpus.pages.len();
    let n_pairs = corpus.pairs.len();
    report.line(&format!(
        "corpus: {n_pages} checkpoint pages, {n_pairs} encode pairs (level 1){}",
        if cfg.quick { ", quick sizes" } else { "" }
    ));

    // --- Correctness gates first: the fast paths must be bit-identical
    // to the legacy paths on the whole corpus before timing them.
    let wide_fps: Vec<PageFingerprint> = corpus
        .pages
        .iter()
        .map(|p| page_fingerprint(p, &fp_cfg))
        .collect();
    let scalar_fps: Vec<PageFingerprint> = corpus
        .pages
        .iter()
        .map(|p| page_fingerprint_scalar(p, &fp_cfg))
        .collect();
    assert_eq!(wide_fps, scalar_fps, "wide scan diverged from scalar");
    let slices: Vec<&[u8]> = corpus.pages.iter().map(Vec::as_slice).collect();
    assert_eq!(
        pages_fingerprints(&slices, &fp_cfg),
        wide_fps,
        "batch scan diverged from per-page scan"
    );
    let mut scratch = EncodeScratch::new();
    let mut patches = Vec::with_capacity(n_pairs);
    let mut out = Vec::new();
    for (base, target) in &corpus.pairs {
        let fast = encode_with(base, target, &enc_cfg, &mut scratch);
        let reference = encode_reference(base, target, &enc_cfg);
        assert_eq!(
            fast.to_bytes(),
            reference.to_bytes(),
            "scratch encoder diverged from reference"
        );
        assert_eq!(apply(base, &fast).expect("apply"), *target);
        apply_into(base, &fast, &mut out).expect("apply_into");
        assert_eq!(out, *target, "apply_into diverged from apply");
        let bytes = fast.to_bytes();
        let view = PatchRef::from_bytes(&bytes).expect("patch view");
        view.apply_into(base, &mut out).expect("zero-copy apply");
        assert_eq!(out, *target, "PatchRef::apply_into diverged");
        patches.push(fast);
    }
    report.line("equality gates: wide==scalar, batch==single, scratch==reference, into==alloc ok");

    // --- Determinism digest (for the CI double-run diff).
    let fp_digest = digest_fingerprints(&wide_fps);
    let patch_digest = digest_patches(&patches);

    // --- Timed sections.
    let samples = if cfg.quick { 300 } else { 3000 };
    let fp_scalar = measure(samples, |i| {
        page_fingerprint_scalar(&corpus.pages[i % n_pages], &fp_cfg).len() as u64
    });
    let fp_wide = measure(samples, |i| {
        page_fingerprint(&corpus.pages[i % n_pages], &fp_cfg).len() as u64
    });
    // Batch: one sample = one whole-corpus call, reported per page.
    let batch_samples = if cfg.quick { 20 } else { 60 };
    let fp_batch_total = measure(batch_samples, |_| {
        pages_fingerprints(&slices, &fp_cfg).len() as u64
    });
    let fp_batch = OpStats {
        p50: fp_batch_total.p50 / n_pages as f64,
        p95: fp_batch_total.p95 / n_pages as f64,
        p99: fp_batch_total.p99 / n_pages as f64,
        samples: batch_samples * n_pages,
    };
    let enc_samples = if cfg.quick { 200 } else { 2000 };
    let enc_reference = measure(enc_samples, |i| {
        let (base, target) = &corpus.pairs[i % n_pairs];
        encode_reference(base, target, &enc_cfg).serialized_size() as u64
    });
    let enc_scratch = measure(enc_samples, |i| {
        let (base, target) = &corpus.pairs[i % n_pairs];
        encode_with(base, target, &enc_cfg, &mut scratch).serialized_size() as u64
    });
    let apply_samples = if cfg.quick { 2000 } else { 20000 };
    let apply_alloc = measure(apply_samples, |i| {
        let (base, _) = &corpus.pairs[i % n_pairs];
        apply(base, &patches[i % n_pairs]).expect("apply").len() as u64
    });
    let apply_into_stats = measure(apply_samples, |i| {
        let (base, _) = &corpus.pairs[i % n_pairs];
        apply_into(base, &patches[i % n_pairs], &mut out).expect("apply_into");
        out.len() as u64
    });
    let patch_bytes: Vec<Vec<u8>> = patches.iter().map(Patch::to_bytes).collect();
    let apply_ref = measure(apply_samples, |i| {
        let (base, _) = &corpus.pairs[i % n_pairs];
        let view = PatchRef::from_bytes(&patch_bytes[i % n_pairs]).expect("view");
        view.apply_into(base, &mut out).expect("zero-copy apply");
        out.len() as u64
    });

    let ops: [(&str, OpStats); 8] = [
        ("fingerprint/scalar", fp_scalar),
        ("fingerprint/wide", fp_wide),
        ("fingerprint/batch", fp_batch),
        ("encode/reference", enc_reference),
        ("encode/scratch", enc_scratch),
        ("apply/alloc", apply_alloc),
        ("apply/into", apply_into_stats),
        ("apply/ref-into", apply_ref),
    ];
    let us = |ns: f64| f(ns / 1000.0, 3);
    report.section("per-op latency (us)");
    report.table(
        &["op", "p50", "p95", "p99", "samples"],
        &ops.iter()
            .map(|(name, s)| {
                vec![
                    name.to_string(),
                    us(s.p50),
                    us(s.p95),
                    us(s.p99),
                    s.samples.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // --- Speedup gates.
    let fp_speedup = fp_scalar.p50 / fp_wide.p50;
    let pair_speedup =
        (enc_reference.p50 + apply_alloc.p50) / (enc_scratch.p50 + apply_into_stats.p50);
    report.section("speedups vs pre-PR path (p50)");
    report.line(&format!(
        "fingerprint scan: {}x (gate >= 1.5x)",
        f(fp_speedup, 2)
    ));
    report.line(&format!(
        "encode+apply pair: {}x (gate >= 1.3x)",
        f(pair_speedup, 2)
    ));
    if !cfg.quick {
        assert!(
            fp_speedup >= 1.5,
            "fingerprint speedup gate failed: {fp_speedup:.2}x < 1.5x"
        );
        assert!(
            pair_speedup >= 1.3,
            "encode+apply speedup gate failed: {pair_speedup:.2}x < 1.3x"
        );
    }
    report.line(&format!(
        "determinism digest: fingerprints {fp_digest:016x}, patches {patch_digest:016x}"
    ));

    // --- Artifacts: JSON record, digest file, per-op perf history.
    let mut op_objs = Vec::new();
    for (name, s) in &ops {
        let mut m = JsonMap::new();
        m.insert("op", *name);
        m.insert("p50_ns", s.p50);
        m.insert("p95_ns", s.p95);
        m.insert("p99_ns", s.p99);
        m.insert("samples", s.samples as u64);
        op_objs.push(Json::Object(m));
    }
    report.json_set("ops", Json::Array(op_objs));
    report.json_set("fingerprint_speedup_p50", Json::from(fp_speedup));
    report.json_set("encode_apply_pair_speedup_p50", Json::from(pair_speedup));
    report.json_set(
        "fingerprint_digest",
        Json::from(format!("{fp_digest:016x}")),
    );
    report.json_set("patch_digest", Json::from(format!("{patch_digest:016x}")));
    let digest_path = cfg.results_dir.join("microbench.digest");
    let digest_body = format!("fingerprints {fp_digest:016x}\npatches {patch_digest:016x}\n");
    if let Err(e) = std::fs::create_dir_all(&cfg.results_dir)
        .and_then(|()| std::fs::write(&digest_path, &digest_body))
    {
        eprintln!("warning: failed to write {}: {e}", digest_path.display());
    }
    for (name, s) in &ops {
        perf_history::append(
            &cfg.results_dir,
            &perf_history::PerfRecord {
                experiment: format!("microbench/{name}"),
                quick: cfg.quick,
                wall_s: s.p50 / 1e9,
                peak_rss_bytes: perf_history::peak_rss_bytes(),
            },
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = OpStats::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.samples, 100);
        let one = OpStats::from_samples(vec![7.0]);
        assert_eq!((one.p50, one.p95, one.p99), (7.0, 7.0, 7.0));
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus(true);
        let b = build_corpus(true);
        assert_eq!(a.pages, b.pages);
        assert_eq!(a.pairs, b.pairs);
        assert!(!a.pairs.is_empty());
    }
}
