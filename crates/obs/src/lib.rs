//! Structured tracing and metrics for the Medes reproduction.
//!
//! Zero-external-dependency observability layer: simulated-time spans
//! ([`Span`]) in a bounded ring buffer exportable as JSONL, plus a
//! [`MetricsRegistry`] of named counters, gauges, and log-linear
//! histograms. All hot paths go through [`Obs`], which is a cheap
//! no-op when [`ObsConfig::enabled`] is false.
//!
//! Naming convention: `medes.<subsystem>.<name>` for both spans and
//! metrics (see DESIGN.md, "Observability").

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod span;

pub use json::{Json, JsonMap, ParseError};
pub use metrics::{LogLinearHistogram, Metric, MetricsRegistry};
pub use span::{AttrValue, ParsedSpan, Span, SpanRecord, Tracer};

use medes_sim::SimTime;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Observability configuration, carried on `PlatformConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Master switch. When false every span/metric call is a no-op.
    pub enabled: bool,
    /// Ring-buffer capacity for spans (oldest dropped when full).
    pub span_buffer_cap: usize,
    /// When set, finished runs export `trace-<run_tag>-<n>.jsonl` here.
    pub export_dir: Option<PathBuf>,
    /// Tag embedded in exported trace filenames.
    pub run_tag: String,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            span_buffer_cap: 1 << 16,
            export_dir: None,
            run_tag: "run".to_string(),
        }
    }
}

impl ObsConfig {
    /// An enabled config with default buffer size and no export.
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }

    /// Sets the export directory (builder style).
    pub fn export_to(mut self, dir: impl Into<PathBuf>) -> Self {
        self.export_dir = Some(dir.into());
        self
    }

    /// Sets the run tag (builder style).
    pub fn tagged(mut self, tag: impl Into<String>) -> Self {
        self.run_tag = tag.into();
        self
    }
}

/// Distinguishes trace files exported by successive runs within one
/// process (simulated time restarts at zero each run, so wall-clock or
/// sim time can't disambiguate).
static EXPORT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Shared observability handle. Clone the `Arc<Obs>` into every
/// subsystem; interior mutability keeps call sites borrow-friendly.
#[derive(Debug)]
pub struct Obs {
    enabled: bool,
    cfg: ObsConfig,
    tracer: Mutex<Tracer>,
    metrics: Mutex<MetricsRegistry>,
}

impl Obs {
    /// Creates a handle from a config.
    pub fn new(cfg: ObsConfig) -> Arc<Obs> {
        let cap = if cfg.enabled { cfg.span_buffer_cap } else { 0 };
        Arc::new(Obs {
            enabled: cfg.enabled,
            tracer: Mutex::new(Tracer::new(cap)),
            metrics: Mutex::new(MetricsRegistry::new()),
            cfg,
        })
    }

    /// A permanently-disabled handle (every call is a no-op).
    pub fn disabled() -> Arc<Obs> {
        Obs::new(ObsConfig::default())
    }

    /// Whether instrumentation is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The config this handle was built from.
    pub fn config(&self) -> &ObsConfig {
        &self.cfg
    }

    /// Starts a span at `start` (simulated time). Record it with
    /// [`Span::end`]. No allocation happens while disabled.
    #[inline]
    pub fn span(&self, name: &'static str, start: SimTime) -> Span<'_> {
        Span {
            obs: self,
            name,
            start,
            attrs: Vec::new(),
        }
    }

    pub(crate) fn record_span(&self, span: SpanRecord) {
        self.tracer.lock().unwrap().record(span);
    }

    /// Adds to a counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if self.enabled {
            self.metrics.lock().unwrap().counter_add(name, delta);
        }
    }

    /// Increments a counter by one.
    #[inline]
    pub fn incr(&self, name: &'static str) {
        self.counter_add(name, 1);
    }

    /// Sets a gauge.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if self.enabled {
            self.metrics.lock().unwrap().gauge_set(name, value);
        }
    }

    /// Records a histogram sample.
    #[inline]
    pub fn record(&self, name: &'static str, sample: u64) {
        if self.enabled {
            self.metrics.lock().unwrap().record(name, sample);
        }
    }

    /// Records a histogram sample from a [`medes_sim::SimDuration`]'s
    /// microsecond count.
    #[inline]
    pub fn record_us(&self, name: &'static str, d: medes_sim::SimDuration) {
        self.record(name, d.as_micros());
    }

    /// Number of spans currently buffered.
    pub fn span_count(&self) -> usize {
        self.tracer.lock().unwrap().len()
    }

    /// Spans evicted due to a full buffer.
    pub fn spans_dropped(&self) -> u64 {
        self.tracer.lock().unwrap().dropped()
    }

    /// Copies out all buffered spans, oldest-first (buffer unchanged).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.tracer.lock().unwrap().iter().cloned().collect()
    }

    /// Name-sorted metrics snapshot.
    pub fn metrics_snapshot(&self) -> Vec<(&'static str, Metric)> {
        self.metrics.lock().unwrap().snapshot()
    }

    /// Current counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.lock().unwrap().counter(name)
    }

    /// Runs `f` against the histogram under `name`, if present.
    pub fn with_histogram<R>(
        &self,
        name: &str,
        f: impl FnOnce(&LogLinearHistogram) -> R,
    ) -> Option<R> {
        let m = self.metrics.lock().unwrap();
        m.histogram(name).map(f)
    }

    /// Renders all buffered spans as JSONL (one span object per line,
    /// oldest first), followed by one `{"metrics": {...}}` line.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for span in self.tracer.lock().unwrap().iter() {
            out.push_str(&span.to_json().to_string());
            out.push('\n');
        }
        let metrics = self.metrics.lock().unwrap().to_json();
        let mut tail = JsonMap::new();
        tail.insert("metrics", metrics);
        out.push_str(&Json::Object(tail).to_string());
        out.push('\n');
        out
    }

    /// Writes the JSONL export to
    /// `<export_dir>/trace-<run_tag>-<seq>.jsonl`, creating directories
    /// as needed. Returns the path written, or `None` when disabled or
    /// no export dir is configured.
    pub fn write_trace(&self) -> std::io::Result<Option<PathBuf>> {
        if !self.enabled {
            return Ok(None);
        }
        let Some(dir) = &self.cfg.export_dir else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let seq = EXPORT_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("trace-{}-{seq}.jsonl", self.cfg.run_tag));
        std::fs::write(&path, self.export_jsonl())?;
        Ok(Some(path))
    }
}

/// Reads spans back from a JSONL trace file's contents, skipping the
/// metrics tail line and any malformed lines.
pub fn parse_jsonl(contents: &str) -> Vec<ParsedSpan> {
    contents
        .lines()
        .filter_map(SpanRecord::parse_line)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn span_records_with_attrs() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.span("medes.dedup.op", t(10))
            .attr("fn", "resnet")
            .attr("bytes", 4096u64)
            .end(t(250));
        let spans = obs.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "medes.dedup.op");
        assert_eq!(spans[0].dur_us(), 240);
        assert_eq!(spans[0].attr("fn"), Some(&AttrValue::Str("resnet".into())));
    }

    #[test]
    fn disabled_is_a_noop() {
        let obs = Obs::disabled();
        obs.span("medes.dedup.op", t(0)).attr("k", 1u64).end(t(100));
        obs.incr("medes.platform.arrivals");
        obs.gauge_set("medes.registry.entries", 1.0);
        obs.record("medes.net.rdma_read_us", 5);
        assert_eq!(obs.span_count(), 0);
        assert_eq!(obs.spans_dropped(), 0);
        assert_eq!(obs.counter("medes.platform.arrivals"), 0);
        assert!(obs.metrics_snapshot().is_empty());
        assert_eq!(obs.write_trace().unwrap(), None);
    }

    #[test]
    fn disabled_span_does_not_allocate_attrs() {
        let obs = Obs::disabled();
        let span = obs.span("medes.test", t(0)).attr("a", 1u64).attr("b", "x");
        assert_eq!(span.attrs.capacity(), 0);
    }

    #[test]
    fn buffer_cap_is_respected() {
        let cfg = ObsConfig {
            enabled: true,
            span_buffer_cap: 4,
            ..ObsConfig::default()
        };
        let obs = Obs::new(cfg);
        for i in 0..10u64 {
            obs.span("s", t(i)).end(t(i + 1));
        }
        assert_eq!(obs.span_count(), 4);
        assert_eq!(obs.spans_dropped(), 6);
        assert_eq!(obs.spans()[0].start_us, 6);
    }

    #[test]
    fn export_and_parse_jsonl() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.span("medes.restore.base_read", t(100))
            .attr("bytes", 8192u64)
            .end(t(400));
        obs.span("medes.restore.ckpt", t(400)).end(t(900));
        obs.incr("medes.platform.starts.dedup");
        let text = obs.export_jsonl();
        assert_eq!(text.lines().count(), 3); // 2 spans + metrics tail
        let spans = parse_jsonl(&text);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "medes.restore.base_read");
        assert_eq!(spans[0].dur_us(), 300);
        assert_eq!(spans[1].dur_us(), 500);
        // Metrics tail is valid JSON.
        let tail = text.lines().last().unwrap();
        let v = json::parse(tail).unwrap();
        assert_eq!(v["metrics"]["medes.platform.starts.dedup"], 1);
    }

    #[test]
    fn write_trace_creates_directories() {
        let dir = std::env::temp_dir().join(format!("medes-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ObsConfig::enabled()
            .export_to(dir.join("nested"))
            .tagged("unit");
        let obs = Obs::new(cfg);
        obs.span("s", t(0)).end(t(1));
        let path = obs.write_trace().unwrap().expect("path");
        assert!(path.exists());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_jsonl(&contents).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
