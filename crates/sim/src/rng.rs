//! Deterministic pseudo-random numbers.
//!
//! [`DetRng`] is xoshiro256\*\* seeded through SplitMix64 — the standard
//! construction recommended by the xoshiro authors. It is implemented
//! from scratch so the simulator depends on nothing whose output could
//! change across crate versions; experiment results must be bit-stable.
//!
//! On top of the raw generator we provide the distributions the workload
//! and content generators need: uniform ranges, exponential, Poisson,
//! normal (Box–Muller), Pareto, and geometric.

/// SplitMix64 step — used for seeding and as a cheap standalone mixer.
///
/// This is also the hash the content generator uses to derive stable
/// per-library seeds from name strings.
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
}

fn splitmix64_next(state: &mut u64) -> u64 {
    splitmix64(state);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mixes arbitrary bytes into a 64-bit seed (FNV-1a basis, SplitMix finish).
pub fn seed_from_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    let mut s = h;
    splitmix64_next(&mut s)
}

/// A deterministic xoshiro256\*\* generator.
///
/// # Examples
///
/// ```
/// use medes_sim::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64_next(&mut sm);
        }
        // Guard against an (astronomically unlikely) all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        DetRng { s }
    }

    /// Derives an independent child generator. Streams derived with
    /// different tags are statistically independent.
    pub fn fork(&self, tag: u64) -> DetRng {
        let mut sm = self.s[0] ^ self.s[2].rotate_left(17) ^ tag.wrapping_mul(0x9E3779B97F4A7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64_next(&mut sm);
        }
        DetRng { s }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next random byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n || lo >= lo.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed sample with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Poisson-distributed sample with the given mean (Knuth for small
    /// means, normal approximation above 64 to stay O(1)).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let x = self.normal(mean, mean.sqrt());
            return x.max(0.0).round() as u64;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Normal sample via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal sample parameterized by the mean/σ of the underlying
    /// normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto sample with scale `x_m` and shape `alpha` (heavy tails for
    /// skewed function popularity).
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        x_m / u.powf(1.0 / alpha)
    }

    /// Zipf sample over `[0, n)` with exponent `s`: rank `r` is drawn
    /// with probability proportional to `1 / (r + 1)^s`. Used for
    /// multi-tenant popularity skew (a handful of tenants dominate
    /// invocation volume). Linear in `n` per draw, which is fine for
    /// the tenant/function cardinalities the workload generators use.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        assert!(n > 0, "zipf(0) is meaningless");
        let norm: f64 = (0..n).map(|r| 1.0 / ((r + 1) as f64).powf(s)).sum();
        let mut u = self.f64() * norm;
        for r in 0..n {
            u -= 1.0 / ((r + 1) as f64).powf(s);
            if u <= 0.0 {
                return r;
            }
        }
        n - 1
    }

    /// Geometric sample: number of failures before the first success with
    /// per-trial probability `p`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0);
        if p >= 1.0 {
            return 0;
        }
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = DetRng::new(9);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let mut c1b = root.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = DetRng::new(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(5);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = DetRng::new(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_converges_small_and_large() {
        let mut rng = DetRng::new(8);
        for target in [0.5, 4.0, 100.0] {
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| rng.poisson(target) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - target).abs() / target.max(1.0) < 0.05,
                "poisson({target}) mean {mean}"
            );
        }
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = DetRng::new(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn geometric_mean_converges() {
        let mut rng = DetRng::new(10);
        let p = 0.25;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        let expected = (1.0 - p) / p;
        assert!((mean - expected).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = DetRng::new(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Deterministic: same seed gives same bytes.
        let mut rng2 = DetRng::new(11);
        let mut buf2 = [0u8; 13];
        rng2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(12);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_bytes_is_stable_and_spread() {
        let a = seed_from_bytes(b"numpy");
        let b = seed_from_bytes(b"numpy");
        let c = seed_from_bytes(b"pandas");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = DetRng::new(14);
        let n = 8u64;
        let mut counts = [0u64; 8];
        for _ in 0..40_000 {
            let r = rng.zipf(n, 1.2);
            assert!(r < n);
            counts[r as usize] += 1;
        }
        // Rank 0 must dominate and the tail must decay monotonically
        // enough that the head outdraws the last rank by a wide margin.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        assert!(counts[0] > 8 * counts[7]);
        // Expected head mass for s=1.2, n=8 is ~40%; check coarsely.
        let frac0 = counts[0] as f64 / 40_000.0;
        assert!((0.30..0.55).contains(&frac0), "head mass {frac0}");
        // Deterministic under the same seed.
        let mut a = DetRng::new(15);
        let mut b = DetRng::new(15);
        for _ in 0..100 {
            assert_eq!(a.zipf(5, 0.9), b.zipf(5, 0.9));
        }
    }

    #[test]
    fn choose_handles_empty_and_nonempty() {
        let mut rng = DetRng::new(13);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(rng.choose(&v).unwrap()));
    }
}
