//! The tile-based content model.
//!
//! Region content is assembled from fixed-size tiles (256 B by default).
//! Each tile is one of:
//!
//! * **Pattern** — drawn from a small universal pool of low-entropy
//!   patterns (zeros, fill bytes, strided machine words). Real memory
//!   dumps are dominated by such content, which is why the paper finds
//!   84–90 % redundancy even across unrelated functions (Fig 1c).
//! * **Shared** — high-entropy content deterministic in
//!   `(stream_seed, tile_index)`; identical for every sandbox that uses
//!   the same stream (same library, or same function for heap streams).
//! * **Unique** — high-entropy content salted with the instance seed;
//!   never deduplicable.
//!
//! Per-instance divergence is *clustered*: bursts of modified bytes with
//! geometric lengths. Clustered (rather than i.i.d.) noise reproduces
//! the measured redundancy-vs-chunk-size slope of Fig 1a: a 64 B chunk
//! rarely intersects a burst, a 1 KiB chunk often does.

use crate::region::RegionKind;
use medes_sim::DetRng;

/// Per-region entropy-mixture weights ("region hints", after the ETH
/// page-merging paper): what fraction of a region's tiles come from the
/// low-entropy pattern pool, the medium-entropy pool, and the
/// instance-unique high-entropy pool. The remainder is stream-shared
/// high-entropy content. `dispersed_noise` is a per-byte, per-instance
/// i.i.d. mutation probability layered over the whole region —
/// unlike the clustered bursts of [`ContentModel::apply_noise`], it is
/// visible to fingerprint sampling at every chunk size, which is what
/// un-flattens the fig 14/16 sensitivity sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionMix {
    /// Fraction of tiles from the low-entropy pattern pool.
    pub low_frac: f64,
    /// Fraction of tiles from the medium-entropy pool (stream-shared,
    /// ~4 bits/byte from a 16-symbol alphabet).
    pub medium_frac: f64,
    /// Fraction of instance-unique high-entropy tiles.
    pub unique_frac: f64,
    /// Per-byte per-instance dispersed mutation probability.
    pub dispersed_noise: f64,
}

impl RegionMix {
    /// True when the fractions are probabilities summing to ≤ 1.
    pub fn is_valid(&self) -> bool {
        let fr = [self.low_frac, self.medium_frac, self.unique_frac];
        fr.iter().all(|f| (0.0..=1.0).contains(f))
            && fr.iter().sum::<f64>() <= 1.0 + 1e-9
            && self.dispersed_noise >= 0.0
            && self.dispersed_noise < 1.0
    }
}

/// Configuration of the entropy-mixture content model. Default-off: with
/// `enabled == false` (and version 0) every byte produced by
/// [`ContentModel`] is identical to the legacy single-mixture model, so
/// existing experiments (fig7/fig9/chaos) replay byte-for-byte.
///
/// `version_mutation_frac` applies even when the mixture is disabled: a
/// rolling-deploy version epoch remaps that fraction of stream-shared
/// and medium tiles to fresh content, modelling a code/data update that
/// invalidates previously demarcated base pages.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentModelConfig {
    /// Master switch for the per-region mixture + dispersed noise.
    pub enabled: bool,
    /// Mixture for the runtime region (interpreter text/data; heavily
    /// dirtied in practice by refcount/GC writes).
    pub runtime: RegionMix,
    /// Mixture for shared-library regions.
    pub library: RegionMix,
    /// Mixture for file-backed mappings.
    pub filemap: RegionMix,
    /// Mixture for the heap.
    pub heap: RegionMix,
    /// Mixture for the stack.
    pub stack: RegionMix,
    /// Fraction of shared/medium tiles remapped per version epoch.
    pub version_mutation_frac: f64,
}

impl ContentModelConfig {
    /// The mixture switched off (legacy byte-identical model); version
    /// epochs still remap `version_mutation_frac` of shared tiles.
    pub fn disabled() -> Self {
        ContentModelConfig {
            enabled: false,
            ..Self::paper_calibrated()
        }
    }

    /// Region weights calibrated so that Table 3 per-function savings
    /// land inside the paper's 16–58 % band and the fig 14/16 sweeps
    /// regain their chunk-size / cardinality sensitivity (see
    /// `EXPERIMENTS.md`). Runtime pages carry the most dispersed noise
    /// (refcount dirtying), heap the most instance-unique content.
    pub fn paper_calibrated() -> Self {
        ContentModelConfig {
            enabled: true,
            runtime: RegionMix {
                low_frac: 0.40,
                medium_frac: 0.30,
                unique_frac: 0.0,
                dispersed_noise: 1.0 / 45.0,
            },
            library: RegionMix {
                low_frac: 0.42,
                medium_frac: 0.30,
                unique_frac: 0.0,
                dispersed_noise: 1.0 / 60.0,
            },
            filemap: RegionMix {
                low_frac: 0.45,
                medium_frac: 0.30,
                unique_frac: 0.0,
                dispersed_noise: 1.0 / 90.0,
            },
            heap: RegionMix {
                low_frac: 0.30,
                medium_frac: 0.30,
                unique_frac: 0.18,
                dispersed_noise: 1.0 / 150.0,
            },
            stack: RegionMix {
                low_frac: 0.32,
                medium_frac: 0.28,
                unique_frac: 0.15,
                dispersed_noise: 1.0 / 120.0,
            },
            version_mutation_frac: 0.35,
        }
    }

    /// The region weights for `kind`.
    pub fn mix_for(&self, kind: RegionKind) -> &RegionMix {
        match kind {
            RegionKind::Runtime => &self.runtime,
            RegionKind::Library => &self.library,
            RegionKind::FileMap => &self.filemap,
            RegionKind::Heap => &self.heap,
            RegionKind::Stack => &self.stack,
        }
    }

    /// True when every region mixture and the version fraction are
    /// valid probabilities.
    pub fn is_valid(&self) -> bool {
        [
            &self.runtime,
            &self.library,
            &self.filemap,
            &self.heap,
            &self.stack,
        ]
        .iter()
        .all(|m| m.is_valid())
            && (0.0..=1.0).contains(&self.version_mutation_frac)
    }
}

impl Default for ContentModelConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Tunable knobs of the synthetic content model. Defaults are calibrated
/// against the paper's Fig 1a/1c (see `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct ContentModel {
    /// Tile granularity in bytes.
    pub tile_size: usize,
    /// Number of distinct low-entropy patterns in the universal pool.
    pub pattern_pool: usize,
    /// Fraction of tiles drawn from the pattern pool.
    pub low_entropy_frac: f64,
    /// Fraction of tiles that are instance-unique.
    pub unique_frac: f64,
    /// Expected clustered-divergence bursts per byte (per instance).
    pub noise_rate: f64,
    /// Mean burst length in bytes (geometric).
    pub noise_len: usize,
    /// Probability that an 8-byte word of a *shared* tile is a pointer
    /// (whose value depends on the region base, and therefore on ASLR).
    pub ptr_per_word: f64,
    /// Heap layout jitter: per-*page* probability of inserting a page of
    /// instance-unique tiles (allocation-order divergence). Jitter is
    /// page-granular because large allocations are mmap-backed and
    /// page-aligned, so divergence shifts content by whole pages.
    pub heap_insert_prob: f64,
    /// Heap layout jitter: per-page probability of skipping one shared
    /// page of the stream.
    pub heap_skip_prob: f64,
    /// Entropy-mixture configuration (default-off; see
    /// [`ContentModelConfig`]).
    pub mixture: ContentModelConfig,
}

impl Default for ContentModel {
    fn default() -> Self {
        ContentModel {
            tile_size: 256,
            pattern_pool: 512,
            low_entropy_frac: 0.82,
            unique_frac: 0.03,
            noise_rate: 1.0 / 6000.0,
            noise_len: 192,
            ptr_per_word: 0.05,
            heap_insert_prob: 0.05,
            heap_skip_prob: 0.05,
            mixture: ContentModelConfig::disabled(),
        }
    }
}

/// What a tile slot contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileKind {
    /// Universal low-entropy pattern `pid`.
    Pattern(u32),
    /// Stream-shared high-entropy content.
    Shared,
    /// Instance-unique content.
    Unique,
    /// Stream-shared medium-entropy content (~4 bits/byte), only
    /// produced when the entropy mixture is enabled.
    Medium,
}

const KIND_SALT: u64 = 0x7EA5_0001;
const SHARED_SALT: u64 = 0x7EA5_0002;
const UNIQUE_SALT: u64 = 0x7EA5_0003;
const PTR_SALT: u64 = 0x7EA5_0004;
const PATTERN_SALT: u64 = 0x7EA5_0005;
const MEDIUM_SALT: u64 = 0x7EA5_0006;
const VERSION_SALT: u64 = 0x7EA5_0007;
const DISPERSED_SALT: u64 = 0xD15E;

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.rotate_left(23) ^ 0x9E3779B97F4A7C15u64.wrapping_mul(b.wrapping_add(1));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl ContentModel {
    /// Decides the kind of tile `idx` in stream `stream_seed`.
    pub fn tile_kind(&self, stream_seed: u64, idx: u64) -> TileKind {
        self.tile_kind_for(stream_seed, idx, true)
    }

    /// Like [`ContentModel::tile_kind`], but with unique tiles disabled
    /// for read-only file-backed regions (runtime, libraries, file
    /// mappings): their bytes are identical in every process that maps
    /// them, so instance-unique content would be unphysical there.
    pub fn tile_kind_for(&self, stream_seed: u64, idx: u64, allow_unique: bool) -> TileKind {
        let h = mix(mix(stream_seed, KIND_SALT), idx);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if allow_unique && u < self.unique_frac {
            TileKind::Unique
        } else if u < self.unique_frac + self.low_entropy_frac {
            // Skewed pattern choice: low pattern ids (zeros and common
            // fills) carry most of the probability mass, like real dumps.
            let v = mix(h, PATTERN_SALT);
            let uu = (v >> 11) as f64 / (1u64 << 53) as f64;
            let pid = ((uu * uu * uu) * self.pattern_pool as f64) as u32;
            TileKind::Pattern(pid.min(self.pattern_pool as u32 - 1))
        } else {
            TileKind::Shared
        }
    }

    /// Region-aware tile-kind decision. With the mixture disabled this
    /// is exactly [`ContentModel::tile_kind_for`] (byte-identical hash
    /// path); with it enabled, the per-region [`RegionMix`] weights pick
    /// between the low/medium/high-entropy pools.
    pub fn tile_kind_region(
        &self,
        stream_seed: u64,
        idx: u64,
        region: RegionKind,
        allow_unique: bool,
    ) -> TileKind {
        if !self.mixture.enabled {
            return self.tile_kind_for(stream_seed, idx, allow_unique);
        }
        let w = self.mixture.mix_for(region);
        let h = mix(mix(stream_seed, KIND_SALT), idx);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < w.unique_frac {
            TileKind::Unique
        } else if u < w.unique_frac + w.low_frac {
            let v = mix(h, PATTERN_SALT);
            let uu = (v >> 11) as f64 / (1u64 << 53) as f64;
            let pid = ((uu * uu * uu) * self.pattern_pool as f64) as u32;
            TileKind::Pattern(pid.min(self.pattern_pool as u32 - 1))
        } else if u < w.unique_frac + w.low_frac + w.medium_frac {
            TileKind::Medium
        } else {
            TileKind::Shared
        }
    }

    /// The salt a version epoch applies to shared/medium tile content:
    /// 0 when the tile is untouched by every epoch up to `version`
    /// (including always at version 0), otherwise a value derived from
    /// the last epoch that remapped it. Each epoch independently remaps
    /// `version_mutation_frac` of the stream's shared tiles.
    pub fn epoch_salt(&self, stream_seed: u64, idx: u64, version: u64) -> u64 {
        if version == 0 {
            return 0;
        }
        let f = self.mixture.version_mutation_frac;
        if f <= 0.0 {
            return 0;
        }
        let mut salt = 0u64;
        for e in 1..=version {
            let h = mix(mix(stream_seed, VERSION_SALT), mix(idx, e));
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < f {
                salt = mix(VERSION_SALT, e);
            }
        }
        salt
    }

    /// Materializes one tile into `out` (`out.len() == tile_size`).
    ///
    /// `region_base`/`region_len` parameterize pointer values planted in
    /// shared tiles; with ASLR, `region_base` differs per instance and
    /// the pointers' upper bytes diverge.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_tile(
        &self,
        out: &mut [u8],
        kind: TileKind,
        stream_seed: u64,
        idx: u64,
        instance_seed: u64,
        region_base: u64,
        region_len: u64,
    ) {
        self.fill_tile_v(
            out,
            kind,
            stream_seed,
            idx,
            instance_seed,
            region_base,
            region_len,
            0,
        );
    }

    /// Version-aware [`ContentModel::fill_tile`]: at `version > 0`,
    /// shared/medium tiles remapped by an epoch (see
    /// [`ContentModel::epoch_salt`]) get fresh content; pattern and
    /// unique tiles are version-invariant. `version == 0` is
    /// byte-identical to `fill_tile`.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_tile_v(
        &self,
        out: &mut [u8],
        kind: TileKind,
        stream_seed: u64,
        idx: u64,
        instance_seed: u64,
        region_base: u64,
        region_len: u64,
        version: u64,
    ) {
        debug_assert_eq!(out.len(), self.tile_size);
        match kind {
            TileKind::Pattern(pid) => self.fill_pattern(out, pid),
            TileKind::Shared => {
                let vsalt = self.epoch_salt(stream_seed, idx, version);
                let mut rng = DetRng::new(mix(mix(stream_seed, SHARED_SALT), idx) ^ vsalt);
                rng.fill_bytes(out);
                self.plant_pointers(out, stream_seed, idx, region_base, region_len);
            }
            TileKind::Unique => {
                let mut rng =
                    DetRng::new(mix(mix(stream_seed, UNIQUE_SALT), mix(instance_seed, idx)));
                rng.fill_bytes(out);
            }
            TileKind::Medium => {
                let vsalt = self.epoch_salt(stream_seed, idx, version);
                let mut rng = DetRng::new(mix(mix(stream_seed, MEDIUM_SALT), idx) ^ vsalt);
                // 16-symbol alphabet -> ~4 bits/byte of Shannon entropy:
                // compressible, but far from the pattern pool's motifs.
                let mut alphabet = [0u8; 16];
                rng.fill_bytes(&mut alphabet);
                for b in out.iter_mut() {
                    *b = alphabet[rng.below(16) as usize];
                }
            }
        }
    }

    /// Writes the universal pattern `pid`: pattern 0 is all zeros (the
    /// overwhelmingly most common page content in real dumps); others
    /// repeat a short motif from a small byte alphabet.
    pub fn fill_pattern(&self, out: &mut [u8], pid: u32) {
        if pid == 0 {
            out.fill(0);
            return;
        }
        let mut rng = DetRng::new(mix(pid as u64, PATTERN_SALT));
        // Motif of 16 bytes over a 4-symbol alphabet -> low entropy.
        let alphabet = [0x00u8, 0xFF, rng.next_u8(), rng.next_u8()];
        let mut motif = [0u8; 16];
        for b in &mut motif {
            *b = alphabet[rng.below(4) as usize];
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = motif[i % 16];
        }
    }

    fn plant_pointers(
        &self,
        out: &mut [u8],
        stream_seed: u64,
        idx: u64,
        region_base: u64,
        region_len: u64,
    ) {
        if self.ptr_per_word <= 0.0 || region_len == 0 {
            return;
        }
        let mut rng = DetRng::new(mix(mix(stream_seed, PTR_SALT), idx));
        let words = out.len() / 8;
        for w in 0..words {
            if rng.chance(self.ptr_per_word) {
                let target = region_base + rng.below(region_len);
                out[w * 8..w * 8 + 8].copy_from_slice(&target.to_le_bytes());
            } else {
                // Burn the draw so slot positions stay aligned across
                // instances (the rng consumption must not depend on the
                // pointer value).
                let _ = rng.next_u64();
            }
        }
    }

    /// Overlays per-instance clustered divergence on a region buffer.
    pub fn apply_noise(&self, data: &mut [u8], region_seed: u64, instance_seed: u64) {
        if self.noise_rate <= 0.0 || data.is_empty() {
            return;
        }
        let mut rng = DetRng::new(mix(mix(region_seed, instance_seed), 0xD1CE));
        let mean_gap = 1.0 / self.noise_rate;
        let mut pos = rng.exponential(mean_gap) as usize;
        while pos < data.len() {
            let len = (rng.geometric(1.0 / self.noise_len as f64) + 1) as usize;
            let end = (pos + len).min(data.len());
            for b in &mut data[pos..end] {
                *b = rng.next_u8();
            }
            pos = end + rng.exponential(mean_gap) as usize + 1;
        }
    }

    /// Overlays per-instance *dispersed* (i.i.d. per-byte) divergence at
    /// `rate`, modelling working-set dirtying such as interpreter
    /// refcount writes. Unlike [`ContentModel::apply_noise`] the
    /// mutations are spread out, so every fingerprint chunk has an
    /// independent chance of being touched — that restores the
    /// chunk-size and cardinality sensitivity of fig 14/16. Only called
    /// when the mixture is enabled.
    pub fn apply_dispersed_noise(
        &self,
        data: &mut [u8],
        region_seed: u64,
        instance_seed: u64,
        rate: f64,
    ) {
        if rate <= 0.0 || data.is_empty() {
            return;
        }
        let mut rng = DetRng::new(mix(mix(region_seed, instance_seed), DISPERSED_SALT));
        let mean_gap = 1.0 / rate;
        let mut pos = rng.exponential(mean_gap) as usize;
        while pos < data.len() {
            data[pos] = rng.next_u8();
            pos += rng.exponential(mean_gap) as usize + 1;
        }
    }
}

/// Exposes the internal mixer for modules that need consistent derived
/// seeds (image builder, ASLR).
pub(crate) fn mix_seed(a: u64, b: u64) -> u64 {
    mix(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ContentModel {
        ContentModel::default()
    }

    #[test]
    fn tile_kind_is_deterministic() {
        let m = model();
        for idx in 0..100 {
            assert_eq!(m.tile_kind(42, idx), m.tile_kind(42, idx));
        }
    }

    #[test]
    fn tile_kind_fractions_roughly_match() {
        let m = model();
        let n = 50_000u64;
        let mut pattern = 0;
        let mut unique = 0;
        for idx in 0..n {
            match m.tile_kind(7, idx) {
                TileKind::Pattern(_) => pattern += 1,
                TileKind::Unique => unique += 1,
                TileKind::Shared | TileKind::Medium => {}
            }
        }
        let pf = pattern as f64 / n as f64;
        let uf = unique as f64 / n as f64;
        assert!((pf - m.low_entropy_frac).abs() < 0.02, "pattern frac {pf}");
        assert!((uf - m.unique_frac).abs() < 0.01, "unique frac {uf}");
    }

    #[test]
    fn shared_tiles_identical_across_instances() {
        let m = model();
        let mut a = vec![0u8; m.tile_size];
        let mut b = vec![0u8; m.tile_size];
        m.fill_tile(&mut a, TileKind::Shared, 11, 5, 111, 0x5000, 1 << 20);
        m.fill_tile(&mut b, TileKind::Shared, 11, 5, 222, 0x5000, 1 << 20);
        assert_eq!(a, b, "shared tiles must not depend on the instance");
    }

    #[test]
    fn shared_tiles_depend_on_region_base() {
        // With a different base (ASLR), planted pointers change bytes.
        let m = ContentModel {
            ptr_per_word: 0.5,
            ..model()
        };
        let mut a = vec![0u8; m.tile_size];
        let mut b = vec![0u8; m.tile_size];
        m.fill_tile(&mut a, TileKind::Shared, 11, 5, 0, 0x5000_0000, 1 << 20);
        m.fill_tile(&mut b, TileKind::Shared, 11, 5, 0, 0x7000_0000, 1 << 20);
        assert_ne!(a, b);
        // But non-pointer bytes stay identical.
        let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(diff < m.tile_size / 2, "only pointer words should differ");
    }

    #[test]
    fn unique_tiles_differ_across_instances() {
        let m = model();
        let mut a = vec![0u8; m.tile_size];
        let mut b = vec![0u8; m.tile_size];
        m.fill_tile(&mut a, TileKind::Unique, 11, 5, 111, 0, 0);
        m.fill_tile(&mut b, TileKind::Unique, 11, 5, 222, 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn pattern_zero_is_zeros_and_patterns_are_low_entropy() {
        let m = model();
        let mut t = vec![0xAAu8; m.tile_size];
        m.fill_pattern(&mut t, 0);
        assert!(t.iter().all(|&b| b == 0));
        m.fill_pattern(&mut t, 17);
        // Motif repeats every 16 bytes.
        for i in 16..t.len() {
            assert_eq!(t[i], t[i - 16]);
        }
    }

    #[test]
    fn noise_is_clustered_and_deterministic() {
        let m = model();
        let mut a = vec![0u8; 1 << 20];
        let mut b = vec![0u8; 1 << 20];
        m.apply_noise(&mut a, 1, 2);
        m.apply_noise(&mut b, 1, 2);
        assert_eq!(a, b);
        let dirty = a.iter().filter(|&&x| x != 0).count();
        // Expected dirty bytes ~ len * burst_len/(gap+burst) ≈ 1MiB * 192/6192 ≈ 32KB.
        // (Some burst bytes randomly equal zero, so accept a wide band.)
        assert!(
            (15_000..70_000).contains(&dirty),
            "dirty byte count {dirty}"
        );
        let mut c = vec![0u8; 1 << 20];
        m.apply_noise(&mut c, 1, 3);
        assert_ne!(a, c, "different instances get different noise");
    }

    fn mixture_model() -> ContentModel {
        ContentModel {
            mixture: ContentModelConfig::paper_calibrated(),
            ..model()
        }
    }

    /// Shannon entropy of a byte slice, in bits per byte.
    fn shannon_bits(data: &[u8]) -> f64 {
        let mut counts = [0u64; 256];
        for &b in data {
            counts[b as usize] += 1;
        }
        let n = data.len() as f64;
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    #[test]
    fn mixture_disabled_is_byte_identical_to_legacy() {
        let legacy = model();
        let off = ContentModel {
            mixture: ContentModelConfig::disabled(),
            ..model()
        };
        let mut a = vec![0u8; legacy.tile_size];
        let mut b = vec![0u8; legacy.tile_size];
        for idx in 0..200 {
            let ka = legacy.tile_kind_for(42, idx, true);
            let kb = off.tile_kind_region(42, idx, RegionKind::Heap, true);
            assert_eq!(ka, kb, "tile {idx}");
            legacy.fill_tile(&mut a, ka, 42, idx, 7, 0x5000, 1 << 20);
            off.fill_tile_v(&mut b, kb, 42, idx, 7, 0x5000, 1 << 20, 0);
            assert_eq!(a, b, "tile {idx}");
        }
    }

    #[test]
    fn mixture_entropy_buckets_match_region_weights() {
        let m = mixture_model();
        let w = *m.mixture.mix_for(RegionKind::Heap);
        let n = 20_000u64;
        let mut buf = vec![0u8; m.tile_size];
        let (mut low, mut medium, mut high) = (0u64, 0u64, 0u64);
        for idx in 0..n {
            let kind = m.tile_kind_region(99, idx, RegionKind::Heap, true);
            m.fill_tile_v(&mut buf, kind, 99, idx, 1234, 0x5000, 1 << 20, 0);
            // Bucket by *measured* entropy, not by the kind label: the
            // pools must be separable in the produced bytes themselves.
            let bits = shannon_bits(&buf);
            if bits < 2.5 {
                low += 1;
            } else if bits < 6.0 {
                medium += 1;
            } else {
                high += 1;
            }
        }
        let lf = low as f64 / n as f64;
        let mf = medium as f64 / n as f64;
        let hf = high as f64 / n as f64;
        let want_high = 1.0 - w.low_frac - w.medium_frac;
        assert!((lf - w.low_frac).abs() < 0.05, "low bucket {lf}");
        assert!((mf - w.medium_frac).abs() < 0.05, "medium bucket {mf}");
        assert!((hf - want_high).abs() < 0.05, "high bucket {hf}");
    }

    #[test]
    fn version_epoch_remaps_configured_tile_fraction() {
        let m = mixture_model();
        let frac = m.mixture.version_mutation_frac;
        let n = 10_000u64;
        let mut v0 = vec![0u8; m.tile_size];
        let mut v1 = vec![0u8; m.tile_size];
        let (mut shared, mut changed) = (0u64, 0u64);
        for idx in 0..n {
            let kind = m.tile_kind_region(7, idx, RegionKind::Heap, true);
            if !matches!(kind, TileKind::Shared | TileKind::Medium) {
                continue;
            }
            shared += 1;
            m.fill_tile_v(&mut v0, kind, 7, idx, 1, 0x5000, 1 << 20, 0);
            m.fill_tile_v(&mut v1, kind, 7, idx, 1, 0x5000, 1 << 20, 1);
            if v0 != v1 {
                changed += 1;
            }
        }
        assert!(shared > 1000, "need a meaningful shared-tile sample");
        let cf = changed as f64 / shared as f64;
        assert!(
            cf >= 0.8 * frac && cf <= 1.2 * frac,
            "epoch changed {cf:.3} of shared tiles, configured {frac}"
        );
        // Version 0 must be byte-identical to the unversioned fill.
        for idx in 0..50 {
            let kind = m.tile_kind_region(7, idx, RegionKind::Heap, true);
            m.fill_tile(&mut v0, kind, 7, idx, 1, 0x5000, 1 << 20);
            m.fill_tile_v(&mut v1, kind, 7, idx, 1, 0x5000, 1 << 20, 0);
            assert_eq!(v0, v1);
        }
    }

    #[test]
    fn dispersed_noise_is_deterministic_and_spread() {
        let m = mixture_model();
        let mut a = vec![0u8; 1 << 18];
        let mut b = vec![0u8; 1 << 18];
        m.apply_dispersed_noise(&mut a, 1, 2, 1.0 / 64.0);
        m.apply_dispersed_noise(&mut b, 1, 2, 1.0 / 64.0);
        assert_eq!(a, b);
        let dirty = a.iter().filter(|&&x| x != 0).count();
        // ~ len/64 mutations, minus ~1/256 that draw zero.
        let expected = (1 << 18) / 64;
        assert!(
            dirty > expected / 2 && dirty < expected * 2,
            "dirty {dirty} vs expected {expected}"
        );
        // Unlike clustered bursts, mutations should rarely be adjacent.
        let adjacent = a.windows(2).filter(|w| w[0] != 0 && w[1] != 0).count();
        assert!(
            adjacent < dirty / 10,
            "dispersed noise should not cluster: {adjacent} adjacent of {dirty}"
        );
        let mut c = vec![0u8; 1 << 18];
        m.apply_dispersed_noise(&mut c, 1, 3, 1.0 / 64.0);
        assert_ne!(a, c);
    }

    #[test]
    fn mixture_config_validation() {
        assert!(ContentModelConfig::disabled().is_valid());
        assert!(ContentModelConfig::paper_calibrated().is_valid());
        let mut bad = ContentModelConfig::paper_calibrated();
        bad.heap.low_frac = 0.9;
        bad.heap.medium_frac = 0.5;
        assert!(!bad.is_valid());
    }

    #[test]
    fn noise_rate_zero_is_noop() {
        let m = ContentModel {
            noise_rate: 0.0,
            ..model()
        };
        let mut a = vec![7u8; 4096];
        m.apply_noise(&mut a, 1, 2);
        assert!(a.iter().all(|&b| b == 7));
    }
}
