//! Address-space layout randomization model.
//!
//! The paper's measurement study (§2.1, Fig 1b) shows that ASLR costs
//! only ~5 % of the identifiable redundancy at 64 B chunks, because
//! (a) chunk sampling is smaller than the page-granularity mmap
//! randomization, and (b) only pointer-bearing words actually change.
//! We model exactly those two effects:
//!
//! * every region's base address gets a per-instance page-aligned shift,
//!   which perturbs pointer *values* planted in shared tiles;
//! * the stack additionally gets a 16-byte-granular content shift
//!   (`rotate`), mirroring stack address randomization.

use crate::content::mix_seed;

/// ASLR configuration.
#[derive(Debug, Clone, Copy)]
pub struct AslrConfig {
    /// Master switch. Off = the upper-bound measurement setup of Fig 1a.
    pub enabled: bool,
    /// Maximum mmap base shift, in pages (power of two recommended).
    pub max_shift_pages: u64,
    /// Stack randomization granularity in bytes (16 on Linux x86-64).
    pub stack_granularity: usize,
    /// Maximum stack shift in multiples of the granularity.
    pub max_stack_steps: u64,
}

impl AslrConfig {
    /// ASLR disabled (paper's upper-bound measurement).
    pub const DISABLED: AslrConfig = AslrConfig {
        enabled: false,
        max_shift_pages: 0,
        stack_granularity: 16,
        max_stack_steps: 0,
    };

    /// Linux-like defaults: up to 64 Ki pages (256 MiB) of mmap shift,
    /// 16 B stack granularity.
    pub const LINUX: AslrConfig = AslrConfig {
        enabled: true,
        max_shift_pages: 1 << 16,
        stack_granularity: 16,
        max_stack_steps: 256,
    };

    /// Per-instance base address of a region, given its canonical base.
    pub fn region_base(&self, canonical: u64, region_seed: u64, instance_seed: u64) -> u64 {
        if !self.enabled || self.max_shift_pages == 0 {
            return canonical;
        }
        let h = mix_seed(mix_seed(region_seed, instance_seed), 0xA51A);
        canonical + (h % self.max_shift_pages) * crate::page::PAGE_SIZE as u64
    }

    /// Per-instance stack content shift in bytes.
    pub fn stack_shift(&self, region_seed: u64, instance_seed: u64) -> usize {
        if !self.enabled || self.max_stack_steps == 0 {
            return 0;
        }
        let h = mix_seed(mix_seed(region_seed, instance_seed), 0x57AC);
        (h % self.max_stack_steps) as usize * self.stack_granularity
    }
}

impl Default for AslrConfig {
    fn default() -> Self {
        AslrConfig::DISABLED
    }
}

/// Rotates region content right by `shift` bytes (the stack model).
pub fn rotate_content(data: &mut [u8], shift: usize) {
    if data.is_empty() {
        return;
    }
    let shift = shift % data.len();
    data.rotate_right(shift);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_identity() {
        let a = AslrConfig::DISABLED;
        assert_eq!(a.region_base(0x1000, 1, 2), 0x1000);
        assert_eq!(a.stack_shift(1, 2), 0);
    }

    #[test]
    fn enabled_shifts_are_page_aligned_and_instance_dependent() {
        let a = AslrConfig::LINUX;
        let b1 = a.region_base(0x1000, 7, 100);
        let b2 = a.region_base(0x1000, 7, 101);
        assert_ne!(b1, b2);
        assert_eq!(b1 % crate::page::PAGE_SIZE as u64, 0x1000 % 4096);
        assert_eq!((b1 - 0x1000) % 4096, 0);
        // Deterministic.
        assert_eq!(b1, a.region_base(0x1000, 7, 100));
    }

    #[test]
    fn stack_shift_granularity() {
        let a = AslrConfig::LINUX;
        for inst in 0..50 {
            let s = a.stack_shift(3, inst);
            assert_eq!(s % 16, 0);
            assert!(s < 256 * 16);
        }
    }

    #[test]
    fn rotate_is_a_rotation() {
        let mut v: Vec<u8> = (0..10).collect();
        rotate_content(&mut v, 3);
        assert_eq!(v, vec![7, 8, 9, 0, 1, 2, 3, 4, 5, 6]);
        rotate_content(&mut v, 7);
        assert_eq!(v, (0..10).collect::<Vec<u8>>());
        let mut empty: Vec<u8> = vec![];
        rotate_content(&mut empty, 5);
    }
}
