//! Fig 14 — sensitivity to the RSC chunk size (§7.8).
//!
//! 32 B chunks collide in the fingerprint registry (dissimilar chunks
//! labelled similar → bigger patches); 128 B chunks identify less
//! redundancy (smaller savings → more evictions → more cold starts).
//! 64 B is the sweet spot the paper picks.

use crate::common::{run as run_platform, ExpConfig};
use crate::report::{f, Report};
use medes_core::config::PolicyKind;
use medes_policy::medes::Objective;

/// Runs the experiment.
pub fn run(cfg: &ExpConfig) -> Report {
    let mut report = Report::new("fig14", "sensitivity to RSC chunk size (32/64/128 B)");
    let suite = cfg.representative_suite();
    let trace = cfg.representative_trace(&suite);
    let mut base = cfg.platform();
    base.nodes = 3;
    base.node_mem_bytes = 168 << 20;
    base.policy = PolicyKind::Medes(cfg.medes_policy(Objective::LatencyTarget { alpha: 2.5 }));

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut sweep: Vec<(usize, f64, f64)> = Vec::new();
    for chunk in [32usize, 64, 128] {
        let mut c = base.clone();
        c.fingerprint.chunk_size = chunk;
        let r = run_platform(c, &suite, &trace);
        let savings: f64 = r
            .dedup_stats
            .iter()
            .filter(|s| s.dedup_ops > 0)
            .map(|s| s.mean_saved_paper_bytes)
            .sum::<f64>()
            / r.dedup_stats
                .iter()
                .filter(|s| s.dedup_ops > 0)
                .count()
                .max(1) as f64;
        let patch: f64 = r
            .dedup_stats
            .iter()
            .filter(|s| s.dedup_ops > 0)
            .map(|s| s.mean_patch_bytes)
            .sum::<f64>()
            / r.dedup_stats
                .iter()
                .filter(|s| s.dedup_ops > 0)
                .count()
                .max(1) as f64;
        sweep.push((chunk, savings, patch));
        rows.push(vec![
            format!("{chunk}B"),
            r.total_cold_starts().to_string(),
            f(savings / (1 << 20) as f64, 1),
            f(patch, 0),
        ]);
        json.push(medes_obs::json!({
            "chunk": chunk,
            "cold": r.total_cold_starts(),
            "mean_savings_mb": savings / (1 << 20) as f64,
            "mean_patch_bytes": patch,
        }));
    }
    report.table(
        &[
            "chunk size",
            "cold starts",
            "avg savings/sandbox (MB)",
            "avg patch (B)",
        ],
        &rows,
    );
    report.line("");
    report.line("paper: 64B best; 128B drops savings (28.8->22.8MB); 32B inflates patches (611->940B) via collisions");
    if cfg.content_model && !cfg.quick {
        // Under the entropy mixture the sweep must recover the paper's
        // shape instead of being flat: coarser chunks identify less
        // redundancy, and 32 B collisions inflate the patches. (Quick
        // traces are too light to trigger any dedup ops here, so the
        // gate only runs at full length.)
        let (s32, s64, s128) = (sweep[0].1, sweep[1].1, sweep[2].1);
        let (p32, p64) = (sweep[0].2, sweep[1].2);
        assert!(
            s128 < s64,
            "mixture on: 128B chunks must drop savings vs 64B ({s128:.0} vs {s64:.0})"
        );
        assert!(
            p32 > p64,
            "mixture on: 32B collisions must inflate patches vs 64B ({p32:.0} vs {p64:.0})"
        );
        report.line(&format!(
            "mixture on: savings non-flat across chunk sizes ({:.1} / {:.1} / {:.1} MB), paper ordering holds",
            s32 / (1 << 20) as f64,
            s64 / (1 << 20) as f64,
            s128 / (1 << 20) as f64,
        ));
    }
    report.json_set("results", medes_obs::Json::Array(json));
    report
}
