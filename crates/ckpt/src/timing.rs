//! The checkpoint/restore timing model.
//!
//! Constants are calibrated from the paper's own measurements:
//!
//! * a *full* CRIU restore (namespace creation, process-tree forks,
//!   reading the image from disk) costs ~650 ms for a typical sandbox;
//! * after Medes's optimizations — namespaces and process tree created
//!   *before* dedup, images kept in memory — the remaining memory-restore
//!   path is ~140 ms (§4.2);
//! * checkpointing a sandbox takes a few hundred ms and scales with the
//!   dump size (the full dedup op takes 2–3.3 s end to end, §7.7).

use medes_sim::SimDuration;

use crate::image::ProcessSpec;

/// What was done ahead of time for a restore.
#[derive(Debug, Clone, Copy)]
pub struct RestoreOptions {
    /// Namespaces and the process tree were pre-created at dedup time
    /// (Medes's first restore optimization).
    pub precreated_sandbox: bool,
    /// The checkpoint image lives in memory, not on disk (second
    /// optimization).
    pub in_memory_image: bool,
}

impl RestoreOptions {
    /// Medes's configuration: everything pre-created, image in memory.
    pub const MEDES: RestoreOptions = RestoreOptions {
        precreated_sandbox: true,
        in_memory_image: true,
    };

    /// A vanilla CRIU restore (the ~650 ms path).
    pub const VANILLA_CRIU: RestoreOptions = RestoreOptions {
        precreated_sandbox: false,
        in_memory_image: false,
    };
}

/// Cost breakdown of one restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreBreakdown {
    /// Namespace + process-tree preparation.
    pub preparation: SimDuration,
    /// Reading + mapping the memory dump.
    pub memory: SimDuration,
}

impl RestoreBreakdown {
    /// Total restore time.
    pub fn total(&self) -> SimDuration {
        self.preparation + self.memory
    }
}

/// Checkpoint/restore cost model.
#[derive(Debug, Clone)]
pub struct TimingModel {
    /// Fixed cost of initiating a checkpoint (freeze, parasite inject).
    pub ckpt_fixed: SimDuration,
    /// Checkpoint cost per MiB dumped.
    pub ckpt_per_mib: SimDuration,
    /// Cost of creating one namespace.
    pub ns_create: SimDuration,
    /// Cost of one fork() during process-tree reconstruction.
    pub fork_per_proc: SimDuration,
    /// Fixed cost of the memory-restore path (page-table setup, CRIU
    /// bookkeeping) — the ~140 ms the paper reports.
    pub restore_fixed: SimDuration,
    /// Disk read bandwidth for on-disk images (MiB/s).
    pub disk_mib_s: f64,
    /// Memory copy bandwidth for in-memory images (MiB/s).
    pub mem_mib_s: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            ckpt_fixed: SimDuration::from_millis(120),
            ckpt_per_mib: SimDuration::from_millis(6),
            ns_create: SimDuration::from_millis(60),
            fork_per_proc: SimDuration::from_millis(2),
            restore_fixed: SimDuration::from_millis(110),
            disk_mib_s: 200.0,
            mem_mib_s: 4096.0,
        }
    }
}

impl TimingModel {
    /// Time to checkpoint `bytes` of sandbox memory.
    pub fn checkpoint_time(&self, bytes: usize) -> SimDuration {
        let mib = bytes as f64 / (1 << 20) as f64;
        self.ckpt_fixed + self.ckpt_per_mib.mul_f64(mib)
    }

    /// Restore cost for a dump of `bytes` with the given options.
    pub fn restore_time(
        &self,
        bytes: usize,
        proc: &ProcessSpec,
        opts: &RestoreOptions,
    ) -> RestoreBreakdown {
        let preparation = if opts.precreated_sandbox {
            SimDuration::ZERO
        } else {
            self.ns_create.mul_f64(proc.namespaces as f64)
                + self.fork_per_proc.mul_f64(proc.processes as f64)
        };
        let mib = bytes as f64 / (1 << 20) as f64;
        let bw = if opts.in_memory_image {
            self.mem_mib_s
        } else {
            self.disk_mib_s
        };
        let memory = self.restore_fixed + SimDuration::from_secs_f64(mib / bw);
        RestoreBreakdown {
            preparation,
            memory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB: usize = 1 << 20;

    #[test]
    fn medes_restore_matches_paper_scale() {
        // ~30 MiB sandbox: the paper reports ~140 ms for the optimized
        // memory-restore path.
        let m = TimingModel::default();
        let b = m.restore_time(30 * MIB, &ProcessSpec::default(), &RestoreOptions::MEDES);
        let ms = b.total().as_millis_f64();
        assert!((100.0..200.0).contains(&ms), "optimized restore {ms} ms");
        assert_eq!(b.preparation, SimDuration::ZERO);
    }

    #[test]
    fn vanilla_restore_is_much_slower() {
        // The paper's unoptimized number is ~650 ms.
        let m = TimingModel::default();
        let b = m.restore_time(
            30 * MIB,
            &ProcessSpec::default(),
            &RestoreOptions::VANILLA_CRIU,
        );
        let ms = b.total().as_millis_f64();
        assert!((400.0..900.0).contains(&ms), "vanilla restore {ms} ms");
    }

    #[test]
    fn checkpoint_scales_with_size() {
        let m = TimingModel::default();
        let small = m.checkpoint_time(17 * MIB);
        let large = m.checkpoint_time(90 * MIB);
        assert!(large > small);
        assert!(small >= m.ckpt_fixed);
    }

    #[test]
    fn more_processes_cost_more_preparation() {
        let m = TimingModel::default();
        let single = m.restore_time(
            MIB,
            &ProcessSpec {
                processes: 1,
                namespaces: 5,
            },
            &RestoreOptions::VANILLA_CRIU,
        );
        let multi = m.restore_time(
            MIB,
            &ProcessSpec {
                processes: 8,
                namespaces: 5,
            },
            &RestoreOptions::VANILLA_CRIU,
        );
        assert!(multi.preparation > single.preparation);
    }
}
