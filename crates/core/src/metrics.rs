//! Run metrics: everything the paper's tables and figures need.
//!
//! The [`MetricsCollector`] is layered on top of `medes-obs`: every
//! request it records is mirrored as a `medes.platform.request` span
//! plus latency histograms, so an obs-enabled run yields a JSONL trace
//! whose aggregates match the [`RunReport`] exactly.

use medes_obs::{LabelSet, Obs, TraceCtx};
use medes_sim::stats::Percentiles;
use medes_sim::{SimDuration, SimTime};
use std::sync::Arc;

/// How a request's sandbox was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartType {
    /// Reused an idle warm sandbox.
    Warm,
    /// Restored a dedup sandbox (a "dedup start").
    Dedup,
    /// Spawned a new sandbox (a cold start; in Catalyzer mode this is a
    /// snapshot restore, still counted as a cold start per §7.6).
    Cold,
}

/// One completed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Trace request id (stable across policies for paired comparison).
    pub id: u64,
    /// Function index.
    pub func: usize,
    /// Arrival time, µs.
    pub arrival_us: u64,
    /// Startup latency (queue wait + sandbox acquisition), µs.
    pub startup_us: u64,
    /// Execution time, µs.
    pub exec_us: u64,
    /// End-to-end latency (arrival → completion), µs.
    pub e2e_us: u64,
    /// How the sandbox was obtained.
    pub start: StartType,
}

impl RequestRecord {
    /// Function slowdown: end-to-end latency over pure execution time.
    pub fn slowdown(&self) -> f64 {
        self.e2e_us as f64 / self.exec_us.max(1) as f64
    }
}

/// Per-function aggregate of dedup behaviour.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnDedupStats {
    /// Dedup ops performed.
    pub dedup_ops: u64,
    /// Restores (dedup starts) performed.
    pub restores: u64,
    /// Mean paper-scale bytes saved per dedup op.
    pub mean_saved_paper_bytes: f64,
    /// Mean paper-scale resident footprint of a dedup sandbox.
    pub mean_dedup_footprint: f64,
    /// Mean dedup-op wall time, µs (the §7.7 overhead number).
    pub mean_dedup_op_us: f64,
    /// Mean restore breakdown, µs: (base read, page compute, ckpt).
    pub mean_restore_us: (f64, f64, f64),
    /// Mean patch size in bytes (model scale).
    pub mean_patch_bytes: f64,
}

impl FnDedupStats {
    /// Folds a value into a running mean. `count` is the number of
    /// observations *including* `value` (callers bump their counter
    /// first, then fold). The first observation (`count <= 1`) sets the
    /// mean outright, so a `count` of zero can never divide by zero.
    pub(crate) fn fold(mean: &mut f64, count: u64, value: f64) {
        if count <= 1 {
            *mean = value;
        } else {
            *mean += (value - *mean) / (count as f64);
        }
    }
}

/// The full output of one platform run. `PartialEq` lets chaos tests
/// assert bit-identical replay of a (seed, fault plan) pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Function names (index-aligned with everything per-function).
    pub functions: Vec<String>,
    /// Every completed request.
    pub requests: Vec<RequestRecord>,
    /// Cluster memory usage samples `(time_us, paper_bytes)`.
    pub mem_series: Vec<(u64, f64)>,
    /// Time-weighted mean cluster memory (paper bytes).
    pub mem_mean_bytes: f64,
    /// Median of sampled cluster memory (paper bytes).
    pub mem_median_bytes: f64,
    /// Time-weighted mean number of live sandboxes.
    pub mean_live_sandboxes: f64,
    /// Sandboxes spawned over the run.
    pub sandboxes_spawned: u64,
    /// Sandboxes that went through the dedup state at least once.
    pub sandboxes_deduped: u64,
    /// Evictions under memory pressure.
    pub evictions: u64,
    /// Keep-alive / keep-dedup expirations.
    pub expirations: u64,
    /// Per-function dedup statistics.
    pub dedup_stats: Vec<FnDedupStats>,
    /// Pages deduplicated against same-function base pages.
    pub same_fn_pages: u64,
    /// Pages deduplicated against other functions' base pages.
    pub cross_fn_pages: u64,
    /// Final fingerprint-registry entries.
    pub registry_entries: usize,
    /// Peak fingerprint-registry entries over the run.
    pub registry_peak_entries: usize,
    /// Peak fingerprint-registry bytes over the run.
    pub registry_peak_bytes: usize,
    /// Final fingerprint-registry bytes (controller overhead, §7.7).
    pub registry_bytes: usize,
    /// Registry lookups served.
    pub registry_lookups: u64,
    /// RDMA bytes moved (restore + dedup reads).
    pub rdma_bytes: u64,
    /// Dedup restores that fell back to a cold start after exhausting
    /// retries (§5.3 availability fallback). Zero without faults.
    pub fallback_cold_starts: u64,
    /// Rolling-deploy version bumps applied over the run (one per
    /// effective [`medes_trace::VersionBump`]; stale or out-of-range
    /// bumps are ignored and not counted).
    pub version_bumps: u64,
    /// Sandboxes and base registrations purged because their content
    /// version fell behind their function's deployed version.
    pub version_purges: u64,
    /// Node crashes injected over the run.
    pub node_crashes: u64,
    /// Node restarts over the run.
    pub node_restarts: u64,
    /// In-flight requests re-dispatched because their node crashed.
    pub rescheduled_requests: u64,
    /// Fabric-level retries performed (RDMA + RPC).
    pub net_retries: u64,
    /// Fabric operations that failed (before retry accounting).
    pub net_failures: u64,
    /// Registry chunk locations still pointing at down nodes at the end
    /// of the run — must be zero (crash purge removes them all).
    pub registry_dead_node_locs: usize,
    /// Base-page cache hits summed over all node caches (restore read
    /// path). Zero when the cache is disabled.
    pub cache_hits: u64,
    /// Base-page cache misses summed over all node caches.
    pub cache_misses: u64,
    /// Base-page cache LRU evictions (capacity or memory pressure).
    pub cache_evictions: u64,
    /// Base-page cache entries dropped because their base sandbox died.
    pub cache_invalidations: u64,
    /// Paper-scale bytes served from the base-page caches instead of
    /// the fabric.
    pub cache_bytes_saved: u64,
    /// Dedup pipeline batch flushes executed. Zero on the legacy serial
    /// path; invariant across worker counts when the pipeline is on
    /// (batch membership depends only on simulated time).
    pub dedup_batches: u64,
    /// Largest dedup batch flushed over the run.
    pub dedup_batch_peak: u64,
    /// Wall-clock-equivalent simulated duration of the run.
    pub duration_us: u64,
}

impl RunReport {
    /// Cold starts per function.
    pub fn cold_starts(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.functions.len()];
        for r in &self.requests {
            if r.start == StartType::Cold {
                v[r.func] += 1;
            }
        }
        v
    }

    /// Total cold starts.
    pub fn total_cold_starts(&self) -> u64 {
        self.cold_starts().iter().sum()
    }

    /// Dedup starts per function.
    pub fn dedup_starts(&self) -> Vec<u64> {
        let mut v = vec![0u64; self.functions.len()];
        for r in &self.requests {
            if r.start == StartType::Dedup {
                v[r.func] += 1;
            }
        }
        v
    }

    /// The `q`-quantile of end-to-end latency for one function, in ms.
    pub fn e2e_quantile_ms(&self, func: usize, q: f64) -> Option<f64> {
        let mut p = Percentiles::new();
        for r in self.requests.iter().filter(|r| r.func == func) {
            p.record(r.e2e_us as f64 / 1e3);
        }
        p.quantile(q)
    }

    /// The `q`-quantile of end-to-end latency over all requests, ms.
    pub fn e2e_quantile_all_ms(&self, q: f64) -> Option<f64> {
        let mut p = Percentiles::new();
        for r in &self.requests {
            p.record(r.e2e_us as f64 / 1e3);
        }
        p.quantile(q)
    }

    /// Per-request improvement factors of `self` over `baseline`
    /// (baseline e2e / this e2e), paired by request id. This is the
    /// distribution Fig 7a plots.
    pub fn improvement_factors(&self, baseline: &RunReport) -> Vec<f64> {
        let mut base = std::collections::HashMap::with_capacity(baseline.requests.len());
        for r in &baseline.requests {
            base.insert(r.id, r.e2e_us);
        }
        self.requests
            .iter()
            .filter_map(|r| base.get(&r.id).map(|&b| b as f64 / r.e2e_us.max(1) as f64))
            .collect()
    }

    /// CDF points of request slowdowns (Fig 16a).
    pub fn slowdown_cdf(&self, points: usize) -> Vec<(f64, f64)> {
        let mut p = Percentiles::new();
        for r in &self.requests {
            p.record(r.slowdown());
        }
        p.cdf(points)
    }

    /// Fraction of spawned sandboxes that were deduplicated at least
    /// once (the paper reports ~39 % for Medes).
    pub fn dedup_fraction(&self) -> f64 {
        if self.sandboxes_spawned == 0 {
            0.0
        } else {
            self.sandboxes_deduped as f64 / self.sandboxes_spawned as f64
        }
    }

    /// Mean dedup-start latency per function, ms (Fig 8 input).
    pub fn mean_restore_breakdown_ms(&self, func: usize) -> Option<(f64, f64, f64)> {
        let s = self.dedup_stats.get(func)?;
        if s.restores == 0 {
            return None;
        }
        let (a, b, c) = s.mean_restore_us;
        Some((a / 1e3, b / 1e3, c / 1e3))
    }
}

/// Builder that the platform drives while the simulation runs.
#[derive(Debug)]
pub struct MetricsCollector {
    /// The report under construction.
    pub report: RunReport,
    obs: Arc<Obs>,
    mem: medes_sim::stats::TimeWeighted,
    live: medes_sim::stats::TimeWeighted,
}

impl MetricsCollector {
    /// Creates a collector for the given functions (obs disabled).
    pub fn new(functions: Vec<String>, mem_sample_every: SimDuration) -> Self {
        Self::with_obs(functions, mem_sample_every, Obs::disabled())
    }

    /// Creates a collector that mirrors everything it records into the
    /// given observability sink.
    pub fn with_obs(functions: Vec<String>, mem_sample_every: SimDuration, obs: Arc<Obs>) -> Self {
        let n = functions.len();
        MetricsCollector {
            report: RunReport {
                functions,
                dedup_stats: vec![FnDedupStats::default(); n],
                ..Default::default()
            },
            obs,
            mem: medes_sim::stats::TimeWeighted::new(mem_sample_every),
            live: medes_sim::stats::TimeWeighted::new(mem_sample_every),
        }
    }

    /// Records one completed request: appends it to the report and
    /// mirrors it as a `medes.platform.request` span + histograms.
    ///
    /// `ctx` is the request's trace root (the span carries its ids, so
    /// restore/dedup phase spans minted from the same root link under
    /// it); pass [`TraceCtx::NONE`] for a flat record. `bound_us` is
    /// the SLO bound in effect (`α · s_W`; 0 = none) — the startup
    /// latency is checked against it in the per-function
    /// [`medes_obs::SloTracker`]. SLO samples are never head-sampled
    /// away: quantiles stay exact even when span sampling is on.
    /// `node` is the node the request ran on; with dimensional
    /// telemetry on it keys the per-node labeled series and tags SLO
    /// violations for drill-down.
    pub fn push_request(&mut self, rec: RequestRecord, ctx: TraceCtx, bound_us: u64, node: usize) {
        if self.obs.enabled() {
            let start_type = match rec.start {
                StartType::Warm => "warm",
                StartType::Dedup => "dedup",
                StartType::Cold => "cold",
            };
            let fn_name = self
                .report
                .functions
                .get(rec.func)
                .map(|s| s.as_str())
                .unwrap_or("?")
                .to_string();
            self.obs.slo_record_traced(
                &fn_name,
                rec.startup_us,
                bound_us,
                ctx.trace_id,
                node as u64,
            );
            let labels = || {
                LabelSet::new()
                    .with("node", node)
                    .with("func", fn_name.clone())
            };
            self.obs
                .span_in(
                    "medes.platform.request",
                    SimTime::from_micros(rec.arrival_us),
                    ctx,
                )
                .attr("id", rec.id)
                .attr("fn", fn_name.clone())
                .attr("start_type", start_type)
                .attr("startup_us", rec.startup_us)
                .attr("exec_us", rec.exec_us)
                .end(SimTime::from_micros(rec.arrival_us + rec.e2e_us));
            let start_counter = match rec.start {
                StartType::Warm => "medes.platform.starts.warm",
                StartType::Dedup => "medes.platform.starts.dedup",
                StartType::Cold => "medes.platform.starts.cold",
            };
            self.obs.incr(start_counter);
            self.obs.incr_labeled(start_counter, labels);
            self.obs
                .record_traced("medes.platform.e2e_us", rec.e2e_us, ctx.trace_id);
            self.obs.record_labeled(
                "medes.platform.e2e_us",
                labels,
                rec.e2e_us,
                Some(ctx.trace_id),
            );
            self.obs
                .record_traced("medes.platform.startup_us", rec.startup_us, ctx.trace_id);
            self.obs.record_labeled(
                "medes.platform.startup_us",
                labels,
                rec.startup_us,
                Some(ctx.trace_id),
            );
            self.obs
                .gauge_set("medes.slo.violations", self.obs.slo_violations() as f64);
        }
        self.report.requests.push(rec);
    }

    /// Records a pressure eviction.
    pub fn push_eviction(&mut self) {
        self.report.evictions += 1;
        self.obs.incr("medes.platform.evictions");
    }

    /// Records a keep-alive / keep-dedup expiration.
    pub fn push_expiration(&mut self) {
        self.report.expirations += 1;
        self.obs.incr("medes.platform.expirations");
    }

    /// Records a cluster memory usage change (paper bytes).
    pub fn mem_update(&mut self, now: SimTime, paper_bytes: f64) {
        self.mem.update(now, paper_bytes);
        self.obs
            .gauge_set("medes.platform.mem_paper_bytes", paper_bytes);
    }

    /// Records a live-sandbox-count change.
    pub fn live_update(&mut self, now: SimTime, count: f64) {
        self.live.update(now, count);
        self.obs.gauge_set("medes.platform.live_sandboxes", count);
    }

    /// Finalizes the report at `end`.
    pub fn finish(mut self, end: SimTime) -> RunReport {
        self.report.duration_us = end.as_micros();
        self.report.mem_mean_bytes = self.mem.mean_until(end);
        self.report.mem_median_bytes = self.mem.median().unwrap_or(0.0);
        self.report.mean_live_sandboxes = self.live.mean_until(end);
        self.report.mem_series = self
            .mem
            .series()
            .iter()
            .map(|&(t, v)| (t.as_micros(), v))
            .collect();
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, func: usize, e2e_ms: u64, start: StartType) -> RequestRecord {
        RequestRecord {
            id,
            func,
            arrival_us: 0,
            startup_us: 0,
            exec_us: 100_000,
            e2e_us: e2e_ms * 1000,
            start,
        }
    }

    #[test]
    fn cold_start_counting() {
        let mut r = RunReport {
            functions: vec!["A".into(), "B".into()],
            ..Default::default()
        };
        r.requests.push(record(0, 0, 500, StartType::Cold));
        r.requests.push(record(1, 0, 10, StartType::Warm));
        r.requests.push(record(2, 1, 600, StartType::Cold));
        assert_eq!(r.cold_starts(), vec![1, 1]);
        assert_eq!(r.total_cold_starts(), 2);
        assert_eq!(r.dedup_starts(), vec![0, 0]);
    }

    #[test]
    fn paired_improvement_factors() {
        let mut medes = RunReport::default();
        let mut base = RunReport::default();
        medes.requests.push(record(0, 0, 100, StartType::Dedup));
        base.requests.push(record(0, 0, 300, StartType::Cold));
        medes.requests.push(record(1, 0, 100, StartType::Warm));
        base.requests.push(record(1, 0, 100, StartType::Warm));
        let f = medes.improvement_factors(&base);
        assert_eq!(f.len(), 2);
        assert!((f[0] - 3.0).abs() < 1e-9);
        assert!((f[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_per_function() {
        let mut r = RunReport {
            functions: vec!["A".into()],
            ..Default::default()
        };
        for i in 0..100 {
            r.requests.push(record(i, 0, i + 1, StartType::Warm));
        }
        let p999 = r.e2e_quantile_ms(0, 0.999).unwrap();
        assert!(p999 > 99.0);
        assert!(r.e2e_quantile_ms(1, 0.5).is_none());
        assert!(r.e2e_quantile_all_ms(0.5).is_some());
    }

    #[test]
    fn slowdown_math() {
        let rec = record(0, 0, 300, StartType::Cold); // exec 100ms, e2e 300ms
        assert!((rec.slowdown() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn collector_time_weighting() {
        let mut c = MetricsCollector::new(vec!["A".into()], SimDuration::from_secs(1));
        c.mem_update(SimTime::ZERO, 100.0);
        c.mem_update(SimTime::from_secs(10), 200.0);
        c.live_update(SimTime::ZERO, 1.0);
        let r = c.finish(SimTime::from_secs(20));
        assert!((r.mem_mean_bytes - 150.0).abs() < 1e-9);
        assert!(!r.mem_series.is_empty());
        assert_eq!(r.duration_us, 20_000_000);
    }

    #[test]
    fn dedup_fraction_handles_zero() {
        let r = RunReport::default();
        assert_eq!(r.dedup_fraction(), 0.0);
    }

    #[test]
    fn fold_matches_arithmetic_mean() {
        // Callers bump their count first and pass the new value, so
        // fold(n) over the n-th sample must track the exact mean.
        let samples = [3.0, 9.0, 1.0, 50.0, 0.25];
        let mut mean = 0.0;
        for (i, &v) in samples.iter().enumerate() {
            FnDedupStats::fold(&mut mean, (i + 1) as u64, v);
            let exact: f64 = samples[..=i].iter().sum::<f64>() / (i + 1) as f64;
            assert!((mean - exact).abs() < 1e-12, "after {} samples", i + 1);
        }
    }

    #[test]
    fn fold_first_observation_sets_mean() {
        // A stale starting value must not leak into the mean, and a
        // count of zero must not divide by zero.
        for count in [0u64, 1] {
            let mut mean = f64::NAN;
            FnDedupStats::fold(&mut mean, count, 42.0);
            assert_eq!(mean, 42.0, "count={count}");
        }
    }
}
