//! Differential tests for the sharded registry + batch-parallel dedup
//! pipeline: the `RunReport` must be bit-identical at every shard count
//! and every worker count, because scans are pure (shard read locks,
//! no fabric access) and commits merge serially in first-enqueued
//! order (DESIGN.md §10). The grid runs both clean and under a chaos
//! fault plan — the fault schedule consumes RNG per fabric op, so any
//! reordering of fabric traffic across worker counts would surface
//! here as a diverged report.

use medes::platform::config::{DedupPipelineConfig, PlatformConfig, PolicyKind};
use medes::platform::metrics::RunReport;
use medes::platform::Platform;
use medes::policy::medes::Objective;
use medes::sim::fault::{FaultPlan, LinkFaultKind, LinkFaultWindow, NodeCrash};
use medes::sim::{SimDuration, SimTime};
use medes::trace::{azure_like_trace, functionbench_suite, FunctionProfile, Trace, TraceGenConfig};

const SHARDS: &[usize] = &[1, 4, 16];
const WORKERS: &[usize] = &[1, 8];
const SEEDS: &[u64] = &[7, 11, 42];

fn pressured_trace(secs: u64, seed: u64) -> (Vec<FunctionProfile>, Trace) {
    let suite: Vec<FunctionProfile> = functionbench_suite().into_iter().take(4).collect();
    let names: Vec<String> = suite.iter().map(|p| p.name.clone()).collect();
    let trace = azure_like_trace(
        &names,
        &TraceGenConfig {
            duration_secs: secs,
            scale: 10.0,
            seed,
            ..Default::default()
        },
    );
    (suite, trace)
}

/// Memory-pressured Medes config with the batch pipeline enabled at
/// the given shard/worker counts.
fn pipelined_config(shards: usize, workers: usize) -> PlatformConfig {
    let mut cfg = PlatformConfig::small_test();
    if let PolicyKind::Medes(m) = &mut cfg.policy {
        m.idle_period = SimDuration::from_secs(5);
        m.objective = Objective::MemoryBudget {
            budget_bytes: 100e6,
        };
    }
    cfg.pipeline = DedupPipelineConfig {
        shards,
        workers,
        flush_interval: SimDuration::from_secs(5),
    };
    cfg
}

/// The chaos plan from the fault-recovery suite: a permanent crash, a
/// bounce, a total link-error window, and background RPC drops.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        seed: 0xFA17,
        crashes: vec![
            NodeCrash {
                node: 0,
                at: SimTime::from_secs(200),
                restart: None,
            },
            NodeCrash {
                node: 1,
                at: SimTime::from_secs(380),
                restart: Some(SimTime::from_secs(450)),
            },
        ],
        links: vec![
            LinkFaultWindow {
                src: None,
                dst: None,
                from: SimTime::from_secs(250),
                until: SimTime::from_secs(320),
                kind: LinkFaultKind::Error { drop_prob: 1.0 },
            },
            LinkFaultWindow {
                src: None,
                dst: None,
                from: SimTime::from_secs(450),
                until: SimTime::from_secs(500),
                kind: LinkFaultKind::LatencySpike { factor: 8.0 },
            },
        ],
        rpc_drop_prob: 0.02,
    }
}

fn run_grid_point(
    shards: usize,
    workers: usize,
    seed: u64,
    faults: Option<&FaultPlan>,
) -> RunReport {
    let (suite, trace) = pressured_trace(400, seed);
    let mut cfg = pipelined_config(shards, workers);
    if let Some(plan) = faults {
        cfg.faults = plan.clone();
    }
    Platform::new(cfg, suite).run(&trace).report
}

/// The core grid: every shard count × worker count must reproduce the
/// (1 shard, 1 worker) report exactly, across three trace seeds.
#[test]
fn report_is_invariant_across_shards_and_workers() {
    for &seed in SEEDS {
        let reference = run_grid_point(1, 1, seed, None);
        assert!(
            reference.sandboxes_deduped > 0,
            "seed {seed}: the grid must exercise real dedup work"
        );
        assert!(
            reference.dedup_batches > 0,
            "seed {seed}: the pipeline must form batches"
        );
        for &shards in SHARDS {
            for &workers in WORKERS {
                if (shards, workers) == (1, 1) {
                    continue;
                }
                let r = run_grid_point(shards, workers, seed, None);
                assert_eq!(
                    r, reference,
                    "seed {seed}: report diverged at {shards} shards x {workers} workers"
                );
            }
        }
    }
}

/// Same grid under the chaos plan: fabric retries draw from the fault
/// schedule's RNG stream per operation, so this additionally proves the
/// commit order (and with it the RNG stream) is worker-independent even
/// while ops are failing and sandboxes are being crash-purged out of
/// the pending queue.
#[test]
fn chaos_report_is_invariant_across_shards_and_workers() {
    let plan = chaos_plan();
    let seed = SEEDS[0];
    let reference = run_grid_point(1, 1, seed, Some(&plan));
    assert!(reference.node_crashes > 0, "chaos plan must fire");
    assert!(
        reference.sandboxes_deduped > 0,
        "chaos grid must exercise real dedup work"
    );
    for &shards in SHARDS {
        for &workers in WORKERS {
            if (shards, workers) == (1, 1) {
                continue;
            }
            let r = run_grid_point(shards, workers, seed, Some(&plan));
            assert_eq!(
                r, reference,
                "chaos: report diverged at {shards} shards x {workers} workers"
            );
        }
    }
}

/// Worker counts above the batch size (and above the host's core
/// count) are clamped, not crashed — the degenerate configs still
/// reproduce the reference report.
#[test]
fn oversized_worker_pool_is_harmless() {
    let seed = SEEDS[1];
    let reference = run_grid_point(1, 1, seed, None);
    let r = run_grid_point(4, 64, seed, None);
    assert_eq!(r, reference, "64-worker run diverged");
}
