//! Identifier newtypes.

use std::fmt;

/// A sandbox instance id, unique for the lifetime of a platform run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SandboxId(pub u64);

/// A worker-node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// A function index into the platform's function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FnId(pub usize);

impl fmt::Display for SandboxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sb{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for FnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(SandboxId(3).to_string(), "sb3");
        assert_eq!(NodeId(1).to_string(), "n1");
        assert_eq!(FnId(9).to_string(), "f9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(SandboxId(1));
        s.insert(SandboxId(1));
        assert_eq!(s.len(), 1);
        assert!(SandboxId(1) < SandboxId(2));
    }
}
