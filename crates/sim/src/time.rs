//! Simulated time.
//!
//! Time is measured in integer microseconds since the start of the
//! simulation. Microseconds are fine-grained enough for the quantities
//! Medes reasons about (RDMA reads are a few microseconds; cold starts
//! are seconds) while keeping arithmetic exact — no floating-point drift
//! across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Saturates at zero if `earlier` is in the future, which makes the
    /// metric code robust to events processed at identical timestamps.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Creates a duration from fractional seconds (rounds to µs).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds (rounds to µs).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e3).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by a non-negative factor (rounds to µs).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(
            (t - SimTime::from_secs(1)).as_micros(),
            SimDuration::from_millis(500).as_micros()
        );
        // Saturating in the "past" direction.
        assert_eq!((SimTime::from_secs(1) - t).as_micros(), 0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5).as_micros(), 250_000);
        assert_eq!(d.mul_f64(-1.0).as_micros(), 0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(10) < SimDuration::from_millis(1));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_micros(), 10_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:?}", SimDuration::from_micros(7)), "7us");
        assert_eq!(format!("{:?}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{:?}", SimDuration::from_secs(7)), "7.000s");
    }
}
