//! The tile-based content model.
//!
//! Region content is assembled from fixed-size tiles (256 B by default).
//! Each tile is one of:
//!
//! * **Pattern** — drawn from a small universal pool of low-entropy
//!   patterns (zeros, fill bytes, strided machine words). Real memory
//!   dumps are dominated by such content, which is why the paper finds
//!   84–90 % redundancy even across unrelated functions (Fig 1c).
//! * **Shared** — high-entropy content deterministic in
//!   `(stream_seed, tile_index)`; identical for every sandbox that uses
//!   the same stream (same library, or same function for heap streams).
//! * **Unique** — high-entropy content salted with the instance seed;
//!   never deduplicable.
//!
//! Per-instance divergence is *clustered*: bursts of modified bytes with
//! geometric lengths. Clustered (rather than i.i.d.) noise reproduces
//! the measured redundancy-vs-chunk-size slope of Fig 1a: a 64 B chunk
//! rarely intersects a burst, a 1 KiB chunk often does.

use medes_sim::DetRng;

/// Tunable knobs of the synthetic content model. Defaults are calibrated
/// against the paper's Fig 1a/1c (see `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct ContentModel {
    /// Tile granularity in bytes.
    pub tile_size: usize,
    /// Number of distinct low-entropy patterns in the universal pool.
    pub pattern_pool: usize,
    /// Fraction of tiles drawn from the pattern pool.
    pub low_entropy_frac: f64,
    /// Fraction of tiles that are instance-unique.
    pub unique_frac: f64,
    /// Expected clustered-divergence bursts per byte (per instance).
    pub noise_rate: f64,
    /// Mean burst length in bytes (geometric).
    pub noise_len: usize,
    /// Probability that an 8-byte word of a *shared* tile is a pointer
    /// (whose value depends on the region base, and therefore on ASLR).
    pub ptr_per_word: f64,
    /// Heap layout jitter: per-*page* probability of inserting a page of
    /// instance-unique tiles (allocation-order divergence). Jitter is
    /// page-granular because large allocations are mmap-backed and
    /// page-aligned, so divergence shifts content by whole pages.
    pub heap_insert_prob: f64,
    /// Heap layout jitter: per-page probability of skipping one shared
    /// page of the stream.
    pub heap_skip_prob: f64,
}

impl Default for ContentModel {
    fn default() -> Self {
        ContentModel {
            tile_size: 256,
            pattern_pool: 512,
            low_entropy_frac: 0.82,
            unique_frac: 0.03,
            noise_rate: 1.0 / 6000.0,
            noise_len: 192,
            ptr_per_word: 0.05,
            heap_insert_prob: 0.05,
            heap_skip_prob: 0.05,
        }
    }
}

/// What a tile slot contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileKind {
    /// Universal low-entropy pattern `pid`.
    Pattern(u32),
    /// Stream-shared high-entropy content.
    Shared,
    /// Instance-unique content.
    Unique,
}

const KIND_SALT: u64 = 0x7EA5_0001;
const SHARED_SALT: u64 = 0x7EA5_0002;
const UNIQUE_SALT: u64 = 0x7EA5_0003;
const PTR_SALT: u64 = 0x7EA5_0004;
const PATTERN_SALT: u64 = 0x7EA5_0005;

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.rotate_left(23) ^ 0x9E3779B97F4A7C15u64.wrapping_mul(b.wrapping_add(1));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl ContentModel {
    /// Decides the kind of tile `idx` in stream `stream_seed`.
    pub fn tile_kind(&self, stream_seed: u64, idx: u64) -> TileKind {
        self.tile_kind_for(stream_seed, idx, true)
    }

    /// Like [`ContentModel::tile_kind`], but with unique tiles disabled
    /// for read-only file-backed regions (runtime, libraries, file
    /// mappings): their bytes are identical in every process that maps
    /// them, so instance-unique content would be unphysical there.
    pub fn tile_kind_for(&self, stream_seed: u64, idx: u64, allow_unique: bool) -> TileKind {
        let h = mix(mix(stream_seed, KIND_SALT), idx);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if allow_unique && u < self.unique_frac {
            TileKind::Unique
        } else if u < self.unique_frac + self.low_entropy_frac {
            // Skewed pattern choice: low pattern ids (zeros and common
            // fills) carry most of the probability mass, like real dumps.
            let v = mix(h, PATTERN_SALT);
            let uu = (v >> 11) as f64 / (1u64 << 53) as f64;
            let pid = ((uu * uu * uu) * self.pattern_pool as f64) as u32;
            TileKind::Pattern(pid.min(self.pattern_pool as u32 - 1))
        } else {
            TileKind::Shared
        }
    }

    /// Materializes one tile into `out` (`out.len() == tile_size`).
    ///
    /// `region_base`/`region_len` parameterize pointer values planted in
    /// shared tiles; with ASLR, `region_base` differs per instance and
    /// the pointers' upper bytes diverge.
    #[allow(clippy::too_many_arguments)]
    pub fn fill_tile(
        &self,
        out: &mut [u8],
        kind: TileKind,
        stream_seed: u64,
        idx: u64,
        instance_seed: u64,
        region_base: u64,
        region_len: u64,
    ) {
        debug_assert_eq!(out.len(), self.tile_size);
        match kind {
            TileKind::Pattern(pid) => self.fill_pattern(out, pid),
            TileKind::Shared => {
                let mut rng = DetRng::new(mix(mix(stream_seed, SHARED_SALT), idx));
                rng.fill_bytes(out);
                self.plant_pointers(out, stream_seed, idx, region_base, region_len);
            }
            TileKind::Unique => {
                let mut rng =
                    DetRng::new(mix(mix(stream_seed, UNIQUE_SALT), mix(instance_seed, idx)));
                rng.fill_bytes(out);
            }
        }
    }

    /// Writes the universal pattern `pid`: pattern 0 is all zeros (the
    /// overwhelmingly most common page content in real dumps); others
    /// repeat a short motif from a small byte alphabet.
    pub fn fill_pattern(&self, out: &mut [u8], pid: u32) {
        if pid == 0 {
            out.fill(0);
            return;
        }
        let mut rng = DetRng::new(mix(pid as u64, PATTERN_SALT));
        // Motif of 16 bytes over a 4-symbol alphabet -> low entropy.
        let alphabet = [0x00u8, 0xFF, rng.next_u8(), rng.next_u8()];
        let mut motif = [0u8; 16];
        for b in &mut motif {
            *b = alphabet[rng.below(4) as usize];
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = motif[i % 16];
        }
    }

    fn plant_pointers(
        &self,
        out: &mut [u8],
        stream_seed: u64,
        idx: u64,
        region_base: u64,
        region_len: u64,
    ) {
        if self.ptr_per_word <= 0.0 || region_len == 0 {
            return;
        }
        let mut rng = DetRng::new(mix(mix(stream_seed, PTR_SALT), idx));
        let words = out.len() / 8;
        for w in 0..words {
            if rng.chance(self.ptr_per_word) {
                let target = region_base + rng.below(region_len);
                out[w * 8..w * 8 + 8].copy_from_slice(&target.to_le_bytes());
            } else {
                // Burn the draw so slot positions stay aligned across
                // instances (the rng consumption must not depend on the
                // pointer value).
                let _ = rng.next_u64();
            }
        }
    }

    /// Overlays per-instance clustered divergence on a region buffer.
    pub fn apply_noise(&self, data: &mut [u8], region_seed: u64, instance_seed: u64) {
        if self.noise_rate <= 0.0 || data.is_empty() {
            return;
        }
        let mut rng = DetRng::new(mix(mix(region_seed, instance_seed), 0xD1CE));
        let mean_gap = 1.0 / self.noise_rate;
        let mut pos = rng.exponential(mean_gap) as usize;
        while pos < data.len() {
            let len = (rng.geometric(1.0 / self.noise_len as f64) + 1) as usize;
            let end = (pos + len).min(data.len());
            for b in &mut data[pos..end] {
                *b = rng.next_u8();
            }
            pos = end + rng.exponential(mean_gap) as usize + 1;
        }
    }
}

/// Exposes the internal mixer for modules that need consistent derived
/// seeds (image builder, ASLR).
pub(crate) fn mix_seed(a: u64, b: u64) -> u64 {
    mix(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ContentModel {
        ContentModel::default()
    }

    #[test]
    fn tile_kind_is_deterministic() {
        let m = model();
        for idx in 0..100 {
            assert_eq!(m.tile_kind(42, idx), m.tile_kind(42, idx));
        }
    }

    #[test]
    fn tile_kind_fractions_roughly_match() {
        let m = model();
        let n = 50_000u64;
        let mut pattern = 0;
        let mut unique = 0;
        for idx in 0..n {
            match m.tile_kind(7, idx) {
                TileKind::Pattern(_) => pattern += 1,
                TileKind::Unique => unique += 1,
                TileKind::Shared => {}
            }
        }
        let pf = pattern as f64 / n as f64;
        let uf = unique as f64 / n as f64;
        assert!((pf - m.low_entropy_frac).abs() < 0.02, "pattern frac {pf}");
        assert!((uf - m.unique_frac).abs() < 0.01, "unique frac {uf}");
    }

    #[test]
    fn shared_tiles_identical_across_instances() {
        let m = model();
        let mut a = vec![0u8; m.tile_size];
        let mut b = vec![0u8; m.tile_size];
        m.fill_tile(&mut a, TileKind::Shared, 11, 5, 111, 0x5000, 1 << 20);
        m.fill_tile(&mut b, TileKind::Shared, 11, 5, 222, 0x5000, 1 << 20);
        assert_eq!(a, b, "shared tiles must not depend on the instance");
    }

    #[test]
    fn shared_tiles_depend_on_region_base() {
        // With a different base (ASLR), planted pointers change bytes.
        let m = ContentModel {
            ptr_per_word: 0.5,
            ..model()
        };
        let mut a = vec![0u8; m.tile_size];
        let mut b = vec![0u8; m.tile_size];
        m.fill_tile(&mut a, TileKind::Shared, 11, 5, 0, 0x5000_0000, 1 << 20);
        m.fill_tile(&mut b, TileKind::Shared, 11, 5, 0, 0x7000_0000, 1 << 20);
        assert_ne!(a, b);
        // But non-pointer bytes stay identical.
        let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(diff < m.tile_size / 2, "only pointer words should differ");
    }

    #[test]
    fn unique_tiles_differ_across_instances() {
        let m = model();
        let mut a = vec![0u8; m.tile_size];
        let mut b = vec![0u8; m.tile_size];
        m.fill_tile(&mut a, TileKind::Unique, 11, 5, 111, 0, 0);
        m.fill_tile(&mut b, TileKind::Unique, 11, 5, 222, 0, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn pattern_zero_is_zeros_and_patterns_are_low_entropy() {
        let m = model();
        let mut t = vec![0xAAu8; m.tile_size];
        m.fill_pattern(&mut t, 0);
        assert!(t.iter().all(|&b| b == 0));
        m.fill_pattern(&mut t, 17);
        // Motif repeats every 16 bytes.
        for i in 16..t.len() {
            assert_eq!(t[i], t[i - 16]);
        }
    }

    #[test]
    fn noise_is_clustered_and_deterministic() {
        let m = model();
        let mut a = vec![0u8; 1 << 20];
        let mut b = vec![0u8; 1 << 20];
        m.apply_noise(&mut a, 1, 2);
        m.apply_noise(&mut b, 1, 2);
        assert_eq!(a, b);
        let dirty = a.iter().filter(|&&x| x != 0).count();
        // Expected dirty bytes ~ len * burst_len/(gap+burst) ≈ 1MiB * 192/6192 ≈ 32KB.
        // (Some burst bytes randomly equal zero, so accept a wide band.)
        assert!(
            (15_000..70_000).contains(&dirty),
            "dirty byte count {dirty}"
        );
        let mut c = vec![0u8; 1 << 20];
        m.apply_noise(&mut c, 1, 3);
        assert_ne!(a, c, "different instances get different noise");
    }

    #[test]
    fn noise_rate_zero_is_noop() {
        let m = ContentModel {
            noise_rate: 0.0,
            ..model()
        };
        let mut a = vec![7u8; 4096];
        m.apply_noise(&mut a, 1, 2);
        assert!(a.iter().all(|&b| b == 7));
    }
}
