//! Fig 1 — the §2.1 measurement study.
//!
//! * Fig 1a: same-function redundancy vs chunk size, ASLR disabled.
//! * Fig 1b: same, ASLR enabled.
//! * Fig 1c: cross-function redundancy matrix at 64 B chunks.
//!
//! Paper reference: same-function redundancy ~0.85–0.95 at 64 B,
//! decaying with chunk size; the cross-function matrix sits in a narrow
//! 0.84–0.90 band; ASLR costs ~5 % at 64 B.

use crate::common::ExpConfig;
use crate::report::{f, Report};
use medes_mem::redundancy::redundancy;
use medes_mem::{AslrConfig, FunctionSpec, ImageBuilder, MemoryImage};
use medes_trace::functionbench_suite;

const CHUNK_SIZES: &[usize] = &[64, 128, 256, 512, 1024];

fn build(
    name: &str,
    mem: usize,
    libs: &[&str],
    aslr: AslrConfig,
    scale: usize,
    inst: u64,
) -> MemoryImage {
    ImageBuilder::new(FunctionSpec::new(name, mem, libs))
        .with_aslr(aslr)
        .with_scale(scale)
        .build(inst)
}

fn images_for_suite(cfg: &ExpConfig, aslr: AslrConfig) -> Vec<(String, MemoryImage, MemoryImage)> {
    functionbench_suite()
        .iter()
        .map(|p| {
            let libs: Vec<&str> = p.libs.iter().map(|s| s.as_str()).collect();
            let a = build(&p.name, p.memory_bytes, &libs, aslr, cfg.study_scale(), 1);
            let b = build(&p.name, p.memory_bytes, &libs, aslr, cfg.study_scale(), 2);
            (p.name.clone(), a, b)
        })
        .collect()
}

fn run_redundancy_curve(cfg: &ExpConfig, aslr: AslrConfig, id: &str, title: &str) -> Report {
    let mut report = Report::new(id, title);
    let images = images_for_suite(cfg, aslr);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, a, b) in &images {
        let mut row = vec![name.clone()];
        let mut series = Vec::new();
        for &k in CHUNK_SIZES {
            let r = redundancy(a, b, k).fraction();
            row.push(f(r, 3));
            series.push(medes_obs::json!({ "chunk": k, "redundancy": r }));
        }
        rows.push(row);
        json.push(medes_obs::json!({ "function": name, "series": series }));
    }
    let header: Vec<String> = std::iter::once("function".to_string())
        .chain(CHUNK_SIZES.iter().map(|k| format!("{k}B")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    report.table(&header_refs, &rows);
    report.line("");
    report.line("paper: ~0.85-0.95 at 64B, monotonically decaying with chunk size");
    report.json_set("functions", medes_obs::Json::Array(json));
    report
}

/// Fig 1a: ASLR disabled (the upper bound).
pub fn run_fig1a(cfg: &ExpConfig) -> Report {
    run_redundancy_curve(
        cfg,
        AslrConfig::DISABLED,
        "fig1a",
        "same-function memory redundancy vs chunk size (ASLR off)",
    )
}

/// Fig 1b: ASLR enabled.
pub fn run_fig1b(cfg: &ExpConfig) -> Report {
    let mut r = run_redundancy_curve(
        cfg,
        AslrConfig::LINUX,
        "fig1b",
        "same-function memory redundancy vs chunk size (ASLR on)",
    );
    r.line("paper: ~5% below the ASLR-off curve at 64B chunks");
    r
}

/// Fig 1c: cross-function redundancy matrix at 64 B.
pub fn run_fig1c(cfg: &ExpConfig) -> Report {
    let mut report = Report::new(
        "fig1c",
        "cross-function redundancy at 64B (row function w.r.t. column function)",
    );
    let suite = functionbench_suite();
    let images: Vec<(String, MemoryImage)> = suite
        .iter()
        .map(|p| {
            let libs: Vec<&str> = p.libs.iter().map(|s| s.as_str()).collect();
            (
                p.name.clone(),
                build(
                    &p.name,
                    p.memory_bytes,
                    &libs,
                    AslrConfig::DISABLED,
                    cfg.study_scale() * 2, // matrix is O(n^2) pairs
                    1,
                ),
            )
        })
        .collect();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (bname, bimg) in &images {
        let mut row = vec![bname.clone()];
        let mut jr = Vec::new();
        for (_, aimg) in &images {
            let r = redundancy(aimg, bimg, 64).fraction();
            row.push(f(r, 2));
            jr.push(r);
        }
        rows.push(row);
        json_rows.push(medes_obs::json!(jr));
    }
    let header: Vec<String> = std::iter::once("w.r.t. ->".to_string())
        .chain(images.iter().map(|(n, _)| n.clone()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    report.table(&header_refs, &rows);
    report.line("");
    report.line("paper: narrow 0.84-0.90 band across all pairs (Fig 1c)");
    report.json_set("matrix", medes_obs::Json::Array(json_rows));
    report.json_set(
        "functions",
        medes_obs::json!(images.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()),
    );
    report
}
