//! Platform configuration.

use medes_ckpt::TimingModel;
use medes_hash::sample::FingerprintConfig;
use medes_mem::{AslrConfig, ContentModel};
use medes_net::{NetConfig, RetryPolicy};
use medes_obs::ObsConfig;
use medes_policy::MedesPolicyConfig;
use medes_sim::fault::FaultPlan;
use medes_sim::SimDuration;
use medes_trace::DeploySchedule;

/// Restore read-path configuration: read coalescing and the per-node
/// base-page cache. The default is fully disabled, which preserves the
/// legacy one-read-per-patched-page behaviour bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreReadConfig {
    /// Deduplicate the `(base sandbox, base page)` read set before
    /// hitting the fabric: each distinct base page transfers once per
    /// restore/dedup op instead of once per patched page.
    pub coalesce: bool,
    /// Paper-scale capacity of each node's base-page cache; 0 disables
    /// the cache. Cached bytes are charged to node memory.
    pub page_cache_bytes: usize,
}

impl RestoreReadConfig {
    /// True when either read-path feature changes restore behaviour.
    pub fn active(&self) -> bool {
        self.coalesce || self.page_cache_bytes > 0
    }

    /// Coalescing on, cache off.
    pub fn coalescing() -> Self {
        RestoreReadConfig {
            coalesce: true,
            page_cache_bytes: 0,
        }
    }

    /// Coalescing on plus a cache of the given paper-scale capacity.
    pub fn cached(page_cache_bytes: usize) -> Self {
        RestoreReadConfig {
            coalesce: true,
            page_cache_bytes,
        }
    }
}

/// Dedup pipeline configuration: registry sharding plus the
/// batch-parallel dedup worker pool. The default is the legacy serial
/// path — one registry shard, no batching — which is pinned
/// byte-identical to the pre-pipeline platform.
///
/// When `workers > 0`, sandboxes picked for dedup are queued instead of
/// scanned inline; the queue is flushed every `flush_interval`, fanning
/// the chunk-scan/lookup/patch-encode work across a scoped worker pool
/// and merging outcomes in first-enqueued order (see DESIGN.md §10 for
/// the determinism argument: `RunReport` is bit-identical at any worker
/// count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupPipelineConfig {
    /// Number of fingerprint-registry shards (≥ 1). Each chunk hash has
    /// one home shard, so lookup results are shard-count-invariant.
    pub shards: usize,
    /// Worker threads for the batched dedup compute phase; 0 disables
    /// the pipeline entirely (legacy inline serial dedup).
    pub workers: usize,
    /// How long pending dedups accumulate before a batch flush.
    pub flush_interval: SimDuration,
}

impl Default for DedupPipelineConfig {
    fn default() -> Self {
        DedupPipelineConfig {
            shards: 1,
            workers: 0,
            flush_interval: SimDuration::from_secs(1),
        }
    }
}

impl DedupPipelineConfig {
    /// True when the batched pipeline replaces the inline serial path.
    pub fn enabled(&self) -> bool {
        self.workers > 0
    }

    /// A sharded parallel pipeline with the default flush interval.
    pub fn parallel(shards: usize, workers: usize) -> Self {
        DedupPipelineConfig {
            shards,
            workers,
            ..Self::default()
        }
    }
}

/// Which sandbox-management policy the platform runs.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// Fixed keep-alive baseline (AWS Lambda-style); no dedup state.
    FixedKeepAlive(SimDuration),
    /// Adaptive (hybrid-histogram) keep-alive baseline; no dedup state.
    AdaptiveKeepAlive,
    /// The Medes policy: warm + dedup states, §5 optimizer.
    Medes(MedesPolicyConfig),
}

/// Full platform configuration. [`PlatformConfig::paper_default`]
/// mirrors the evaluation testbed (§7.1): 19 worker nodes, a 2 GB
/// software memory limit per node, 64 B chunks, 5-chunk fingerprints,
/// T = 40, Xdelta level 1.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Number of worker nodes (the controller is separate, as in §7.1).
    pub nodes: usize,
    /// Paper-scale memory limit per node, bytes.
    pub node_mem_bytes: usize,
    /// Memory-image scale denominator: model bytes = paper bytes / this.
    pub mem_scale: usize,
    /// Value-sampled fingerprint configuration (chunk size, cardinality).
    pub fingerprint: FingerprintConfig,
    /// Xdelta-style compression level for page patches.
    pub delta_level: u8,
    /// Keep a patch only if it is smaller than this fraction of a page.
    pub patch_max_frac: f64,
    /// The sandbox-management policy.
    pub policy: PolicyKind,
    /// Synthetic memory content model.
    pub content: ContentModel,
    /// ASLR model.
    pub aslr: AslrConfig,
    /// Cluster fabric cost model.
    pub net: NetConfig,
    /// Checkpoint/restore timing model.
    pub ckpt: TimingModel,
    /// Controller-side registry lookup cost per (paper-scale) page —
    /// ~80 µs in the paper's single-threaded controller (§7.7).
    pub lookup_per_page: SimDuration,
    /// Patch computation cost per (paper-scale) page during dedup.
    pub patch_compute_per_page: SimDuration,
    /// Patch application cost per (paper-scale) page during restore.
    pub patch_apply_per_page: SimDuration,
    /// Emulated-Catalyzer mode (§7.6): cold starts become snapshot
    /// restores.
    pub catalyzer_mode: bool,
    /// Snapshot-restore latency used in Catalyzer mode.
    pub catalyzer_restore: SimDuration,
    /// How often the controller re-solves policy targets.
    pub policy_tick: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Verify every restore byte-for-byte against the regenerated image
    /// (slow; enabled in tests).
    pub verify_restores: bool,
    /// Structured tracing/metrics configuration (`medes-obs`). Disabled
    /// by default: the platform then skips all span/metric recording.
    pub obs: ObsConfig,
    /// Fault-injection plan. Empty (the default) means the fault layer
    /// is a provable no-op: no schedule is installed and every run is
    /// byte-identical to a build without fault support.
    pub faults: FaultPlan,
    /// Retry/backoff policy for fabric operations under fault injection.
    pub retry: RetryPolicy,
    /// Restore read-path features (coalescing + base-page cache).
    /// Disabled by default: restores then issue one read per patched
    /// page exactly as before.
    pub read_path: RestoreReadConfig,
    /// Registry sharding + batch-parallel dedup pipeline. Defaults to
    /// the legacy serial path (one shard, zero workers), which is
    /// byte-identical to the pre-pipeline platform.
    pub pipeline: DedupPipelineConfig,
    /// Per-node memory capacities, bytes. Empty (the default) means
    /// every node has `node_mem_bytes`; a non-empty vector must have one
    /// entry per node and enables heterogeneous placement/eviction.
    pub node_mem_profile: Vec<usize>,
    /// Rolling-deploy schedule: per-function version bumps that
    /// invalidate older-version sandboxes and their demarcated base
    /// pages. Empty (the default) is the provable no-op.
    pub deploys: DeploySchedule,
    /// Where the fingerprint registry lives. The default controller-
    /// resident placement is byte-identical to earlier revisions; the
    /// distributed placement stores shards on worker nodes and routes
    /// registry traffic over the fabric as priced RPCs.
    pub registry: RegistryPlacement,
}

/// Placement of the fingerprint registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegistryPlacement {
    /// Controller-resident sharded registry (the default).
    #[default]
    InProcess,
    /// Shards owned by the first `owners` worker nodes, accessed over
    /// the fabric. Candidate results — and the `RunReport` — are
    /// bit-identical to [`RegistryPlacement::InProcess`] at any owner
    /// count; only the accounted registry-RPC traffic differs.
    Distributed {
        /// Number of owner nodes; must lie in `1..=nodes`.
        owners: usize,
    },
}

/// A rejected [`PlatformConfigBuilder`] configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The cluster needs at least one worker node.
    ZeroNodes,
    /// Per-node memory must be non-zero.
    ZeroNodeMem,
    /// The memory-image scale denominator must be at least 1.
    ZeroMemScale,
    /// The fingerprint registry needs at least one shard.
    ZeroShards,
    /// `patch_max_frac` must lie in (0, 1].
    InvalidPatchFrac(f64),
    /// The per-node base-page cache cannot exceed node memory.
    CacheExceedsNodeMem {
        /// Requested paper-scale cache capacity, bytes.
        cache_bytes: usize,
        /// Configured per-node memory limit, bytes.
        node_mem_bytes: usize,
    },
    /// A non-zero worker pool needs a positive flush interval.
    ZeroFlushInterval,
    /// A heterogeneous memory profile must list one capacity per node.
    NodeMemProfileLen {
        /// Number of worker nodes configured.
        nodes: usize,
        /// Entries in the provided profile.
        got: usize,
    },
    /// Every entry of a heterogeneous memory profile must be non-zero.
    ZeroNodeMemProfileEntry {
        /// Index of the offending node.
        node: usize,
    },
    /// Deploy schedule versions must be non-zero (version 0 is the
    /// initial deployment).
    ZeroDeployVersion {
        /// Index of the offending bump in the schedule.
        bump: usize,
    },
    /// The content-model entropy-mixture weights are not valid
    /// probabilities (each region's fractions must sum to ≤ 1).
    InvalidMixture,
    /// A distributed registry needs at least one owner node.
    ZeroRegistryOwners,
    /// A distributed registry cannot have more owners than nodes.
    RegistryOwnersExceedNodes {
        /// Requested owner count.
        owners: usize,
        /// Number of worker nodes configured.
        nodes: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroNodes => write!(f, "cluster needs at least one worker node"),
            ConfigError::ZeroNodeMem => write!(f, "per-node memory limit must be non-zero"),
            ConfigError::ZeroMemScale => write!(f, "memory scale denominator must be >= 1"),
            ConfigError::ZeroShards => {
                write!(f, "fingerprint registry needs at least one shard")
            }
            ConfigError::InvalidPatchFrac(v) => {
                write!(f, "patch_max_frac must lie in (0, 1], got {v}")
            }
            ConfigError::CacheExceedsNodeMem {
                cache_bytes,
                node_mem_bytes,
            } => write!(
                f,
                "page cache of {cache_bytes} B cannot exceed node memory of {node_mem_bytes} B"
            ),
            ConfigError::ZeroFlushInterval => {
                write!(f, "dedup pipeline needs a positive flush interval")
            }
            ConfigError::NodeMemProfileLen { nodes, got } => {
                write!(f, "node memory profile has {got} entries for {nodes} nodes")
            }
            ConfigError::ZeroNodeMemProfileEntry { node } => {
                write!(f, "node {node} has zero memory in the profile")
            }
            ConfigError::ZeroDeployVersion { bump } => {
                write!(
                    f,
                    "deploy bump {bump} targets version 0 (the initial deploy)"
                )
            }
            ConfigError::InvalidMixture => {
                write!(
                    f,
                    "content-model mixture weights must be probabilities summing to <= 1"
                )
            }
            ConfigError::ZeroRegistryOwners => {
                write!(f, "distributed registry needs at least one owner node")
            }
            ConfigError::RegistryOwnersExceedNodes { owners, nodes } => {
                write!(
                    f,
                    "distributed registry wants {owners} owner nodes but the cluster has {nodes}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`PlatformConfig`]: the supported way for
/// harness flags (`--cache`, `--faults`, `--shards`, `--workers`) to
/// assemble a configuration instead of mutating public fields ad hoc.
/// [`PlatformConfigBuilder::build`] rejects nonsense — zero shards, a
/// cache larger than node memory — before a run starts.
#[derive(Debug, Clone)]
pub struct PlatformConfigBuilder {
    cfg: PlatformConfig,
}

impl PlatformConfigBuilder {
    /// Number of worker nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.cfg.nodes = nodes;
        self
    }

    /// Paper-scale memory limit per node, bytes.
    pub fn node_mem_bytes(mut self, bytes: usize) -> Self {
        self.cfg.node_mem_bytes = bytes;
        self
    }

    /// Memory-image scale denominator.
    pub fn mem_scale(mut self, scale: usize) -> Self {
        self.cfg.mem_scale = scale;
        self
    }

    /// The sandbox-management policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Structured tracing/metrics configuration.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.cfg.obs = obs;
        self
    }

    /// Fault-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Restore read-path features (coalescing + base-page cache).
    pub fn read_path(mut self, read_path: RestoreReadConfig) -> Self {
        self.cfg.read_path = read_path;
        self
    }

    /// Registry sharding + batch-parallel dedup pipeline.
    pub fn pipeline(mut self, pipeline: DedupPipelineConfig) -> Self {
        self.cfg.pipeline = pipeline;
        self
    }

    /// Registry shard count (leaves the rest of the pipeline config).
    pub fn shards(mut self, shards: usize) -> Self {
        self.cfg.pipeline.shards = shards;
        self
    }

    /// Dedup worker-pool size; 0 keeps the legacy serial path.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.pipeline.workers = workers;
        self
    }

    /// Registry placement (in-process vs distributed).
    pub fn registry(mut self, placement: RegistryPlacement) -> Self {
        self.cfg.registry = placement;
        self
    }

    /// Distributes the fingerprint registry across `owners` worker
    /// nodes. Shorthand for
    /// `registry(RegistryPlacement::Distributed { owners })`.
    pub fn registry_owners(mut self, owners: usize) -> Self {
        self.cfg.registry = RegistryPlacement::Distributed { owners };
        self
    }

    /// Per-node memory capacities (heterogeneous cluster). Pass an
    /// empty vector to return to uniform `node_mem_bytes`.
    pub fn node_mem_profile(mut self, profile: Vec<usize>) -> Self {
        self.cfg.node_mem_profile = profile;
        self
    }

    /// Rolling-deploy schedule.
    pub fn deploys(mut self, deploys: DeploySchedule) -> Self {
        self.cfg.deploys = deploys;
        self
    }

    /// Emulated-Catalyzer mode (§7.6).
    pub fn catalyzer_mode(mut self, on: bool) -> Self {
        self.cfg.catalyzer_mode = on;
        self
    }

    /// Verify every restore byte-for-byte (slow; tests).
    pub fn verify_restores(mut self, on: bool) -> Self {
        self.cfg.verify_restores = on;
        self
    }

    /// Applies an arbitrary edit to the underlying configuration, for
    /// the long tail of fields without dedicated setters. Validation
    /// still runs at [`PlatformConfigBuilder::build`].
    pub fn tweak(mut self, f: impl FnOnce(&mut PlatformConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<PlatformConfig, ConfigError> {
        let c = &self.cfg;
        if c.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if c.node_mem_bytes == 0 {
            return Err(ConfigError::ZeroNodeMem);
        }
        if c.mem_scale == 0 {
            return Err(ConfigError::ZeroMemScale);
        }
        if c.pipeline.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if !(c.patch_max_frac > 0.0 && c.patch_max_frac <= 1.0) {
            return Err(ConfigError::InvalidPatchFrac(c.patch_max_frac));
        }
        if c.read_path.page_cache_bytes > c.node_mem_bytes {
            return Err(ConfigError::CacheExceedsNodeMem {
                cache_bytes: c.read_path.page_cache_bytes,
                node_mem_bytes: c.node_mem_bytes,
            });
        }
        if c.pipeline.enabled() && c.pipeline.flush_interval == SimDuration::ZERO {
            return Err(ConfigError::ZeroFlushInterval);
        }
        if !c.node_mem_profile.is_empty() {
            if c.node_mem_profile.len() != c.nodes {
                return Err(ConfigError::NodeMemProfileLen {
                    nodes: c.nodes,
                    got: c.node_mem_profile.len(),
                });
            }
            if let Some(node) = c.node_mem_profile.iter().position(|&m| m == 0) {
                return Err(ConfigError::ZeroNodeMemProfileEntry { node });
            }
            if c.read_path.page_cache_bytes > 0 {
                let min_mem = *c.node_mem_profile.iter().min().unwrap();
                if c.read_path.page_cache_bytes > min_mem {
                    return Err(ConfigError::CacheExceedsNodeMem {
                        cache_bytes: c.read_path.page_cache_bytes,
                        node_mem_bytes: min_mem,
                    });
                }
            }
        }
        if let Some(bump) = c.deploys.bumps.iter().position(|b| b.version == 0) {
            return Err(ConfigError::ZeroDeployVersion { bump });
        }
        if !c.content.mixture.is_valid() {
            return Err(ConfigError::InvalidMixture);
        }
        if let RegistryPlacement::Distributed { owners } = c.registry {
            if owners == 0 {
                return Err(ConfigError::ZeroRegistryOwners);
            }
            if owners > c.nodes {
                return Err(ConfigError::RegistryOwnersExceedNodes {
                    owners,
                    nodes: c.nodes,
                });
            }
        }
        Ok(self.cfg)
    }
}

impl PlatformConfig {
    /// Starts a validating builder from [`PlatformConfig::paper_default`].
    pub fn builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder {
            cfg: Self::paper_default(),
        }
    }

    /// Starts a validating builder from [`PlatformConfig::small_test`].
    pub fn test_builder() -> PlatformConfigBuilder {
        PlatformConfigBuilder {
            cfg: Self::small_test(),
        }
    }

    /// The evaluation-testbed configuration (§7.1): 19 workers with a
    /// 2 GB software memory limit each, Medes policy P1 (α = 2.5).
    pub fn paper_default() -> Self {
        PlatformConfig {
            nodes: 19,
            node_mem_bytes: 2 << 30,
            mem_scale: 64,
            fingerprint: FingerprintConfig::default(),
            delta_level: 1,
            patch_max_frac: 0.9,
            policy: PolicyKind::Medes(MedesPolicyConfig::default()),
            content: ContentModel::default(),
            aslr: AslrConfig::DISABLED,
            net: NetConfig::default(),
            ckpt: TimingModel::default(),
            lookup_per_page: SimDuration::from_micros(80),
            patch_compute_per_page: SimDuration::from_micros(40),
            patch_apply_per_page: SimDuration::from_micros(8),
            catalyzer_mode: false,
            catalyzer_restore: SimDuration::from_millis(150),
            policy_tick: SimDuration::from_secs(10),
            seed: 0xC0FFEE,
            verify_restores: false,
            obs: ObsConfig::default(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            read_path: RestoreReadConfig::default(),
            pipeline: DedupPipelineConfig::default(),
            node_mem_profile: Vec::new(),
            deploys: DeploySchedule::default(),
            registry: RegistryPlacement::InProcess,
        }
    }

    /// A small fast configuration for unit/integration tests: 4 nodes,
    /// aggressive memory scale, restore verification on.
    pub fn small_test() -> Self {
        PlatformConfig {
            nodes: 4,
            node_mem_bytes: 1 << 30,
            mem_scale: 256,
            verify_restores: true,
            ..Self::paper_default()
        }
    }

    /// Same configuration but running a baseline policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Converts model-scale bytes to paper-scale bytes.
    pub fn to_paper_bytes(&self, model_bytes: usize) -> usize {
        model_bytes * self.mem_scale
    }

    /// True when the dedup state is enabled (Medes policy).
    pub fn is_medes(&self) -> bool {
        matches!(self.policy, PolicyKind::Medes(_))
    }

    /// The memory capacity of `node`: the profile entry when a
    /// heterogeneous profile is set, the uniform limit otherwise.
    pub fn node_mem(&self, node: usize) -> usize {
        self.node_mem_profile
            .get(node)
            .copied()
            .unwrap_or(self.node_mem_bytes)
    }

    /// Total cluster memory capacity, bytes.
    pub fn cluster_mem_bytes(&self) -> usize {
        if self.node_mem_profile.is_empty() {
            self.nodes * self.node_mem_bytes
        } else {
            self.node_mem_profile.iter().sum()
        }
    }

    /// The smallest node's capacity (placement feasibility bound).
    pub fn min_node_mem(&self) -> usize {
        self.node_mem_profile
            .iter()
            .copied()
            .min()
            .unwrap_or(self.node_mem_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_testbed() {
        let c = PlatformConfig::paper_default();
        assert_eq!(c.nodes, 19);
        assert_eq!(c.node_mem_bytes, 2 << 30);
        assert_eq!(c.fingerprint.chunk_size, 64);
        assert_eq!(c.fingerprint.cardinality, 5);
        assert_eq!(c.delta_level, 1);
        assert!(c.is_medes());
        if let PolicyKind::Medes(m) = &c.policy {
            assert_eq!(m.base_threshold, 40);
        }
    }

    #[test]
    fn scale_conversion() {
        let c = PlatformConfig::paper_default();
        assert_eq!(c.to_paper_bytes(1 << 20), 64 << 20);
    }

    #[test]
    fn read_path_defaults_to_legacy() {
        let c = PlatformConfig::paper_default();
        assert!(!c.read_path.active(), "read path must default off");
        assert!(RestoreReadConfig::coalescing().active());
        assert!(RestoreReadConfig::cached(1 << 20).active());
        assert_eq!(RestoreReadConfig::cached(1 << 20).page_cache_bytes, 1 << 20);
    }

    #[test]
    fn policy_swap() {
        let c = PlatformConfig::paper_default()
            .with_policy(PolicyKind::FixedKeepAlive(SimDuration::from_mins(10)));
        assert!(!c.is_medes());
    }

    #[test]
    fn pipeline_defaults_to_legacy_serial() {
        let c = PlatformConfig::paper_default();
        assert!(!c.pipeline.enabled(), "pipeline must default off");
        assert_eq!(c.pipeline.shards, 1);
        assert!(DedupPipelineConfig::parallel(4, 2).enabled());
    }

    #[test]
    fn builder_accepts_valid_configs() {
        let c = PlatformConfig::builder()
            .nodes(8)
            .shards(16)
            .workers(4)
            .seed(7)
            .build()
            .expect("valid config");
        assert_eq!(c.nodes, 8);
        assert_eq!(c.pipeline.shards, 16);
        assert_eq!(c.pipeline.workers, 4);
        assert_eq!(c.seed, 7);
        // The builder starts from paper_default; untouched fields keep it.
        assert_eq!(c.node_mem_bytes, 2 << 30);
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            PlatformConfig::builder().nodes(0).build().unwrap_err(),
            ConfigError::ZeroNodes
        );
        assert_eq!(
            PlatformConfig::builder().shards(0).build().unwrap_err(),
            ConfigError::ZeroShards
        );
        assert_eq!(
            PlatformConfig::builder().mem_scale(0).build().unwrap_err(),
            ConfigError::ZeroMemScale
        );
        assert_eq!(
            PlatformConfig::builder()
                .node_mem_bytes(1 << 20)
                .read_path(RestoreReadConfig::cached(1 << 30))
                .build()
                .unwrap_err(),
            ConfigError::CacheExceedsNodeMem {
                cache_bytes: 1 << 30,
                node_mem_bytes: 1 << 20,
            }
        );
        assert_eq!(
            PlatformConfig::builder()
                .workers(2)
                .tweak(|c| c.pipeline.flush_interval = SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroFlushInterval
        );
        assert_eq!(
            PlatformConfig::builder()
                .tweak(|c| c.patch_max_frac = 0.0)
                .build()
                .unwrap_err(),
            ConfigError::InvalidPatchFrac(0.0)
        );
        // Errors render as actionable messages.
        assert!(ConfigError::ZeroShards.to_string().contains("shard"));
    }

    #[test]
    fn registry_placement_validation() {
        // Default placement is in-process.
        let c = PlatformConfig::builder().build().unwrap();
        assert_eq!(c.registry, RegistryPlacement::InProcess);
        // A valid distributed placement round-trips through the setter.
        let d = PlatformConfig::builder()
            .nodes(8)
            .registry_owners(4)
            .build()
            .expect("valid distributed registry");
        assert_eq!(d.registry, RegistryPlacement::Distributed { owners: 4 });
        // Zero owners and more owners than nodes are rejected.
        assert_eq!(
            PlatformConfig::builder()
                .registry_owners(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroRegistryOwners
        );
        assert_eq!(
            PlatformConfig::builder()
                .nodes(4)
                .registry_owners(12)
                .build()
                .unwrap_err(),
            ConfigError::RegistryOwnersExceedNodes {
                owners: 12,
                nodes: 4
            }
        );
        assert!(ConfigError::ZeroRegistryOwners
            .to_string()
            .contains("owner"));
    }

    #[test]
    fn hetero_profile_validation() {
        // Valid: one entry per node, all non-zero.
        let c = PlatformConfig::builder()
            .nodes(3)
            .node_mem_profile(vec![1 << 30, 2 << 30, 3 << 30])
            .build()
            .expect("valid hetero profile");
        assert_eq!(c.node_mem(0), 1 << 30);
        assert_eq!(c.node_mem(2), 3 << 30);
        assert_eq!(c.min_node_mem(), 1 << 30);
        assert_eq!(c.cluster_mem_bytes(), 6 << 30);
        // Uniform fallback.
        let u = PlatformConfig::builder().nodes(2).build().unwrap();
        assert_eq!(u.node_mem(1), u.node_mem_bytes);
        assert_eq!(u.cluster_mem_bytes(), 2 * u.node_mem_bytes);
        // Wrong length.
        assert_eq!(
            PlatformConfig::builder()
                .nodes(3)
                .node_mem_profile(vec![1 << 30])
                .build()
                .unwrap_err(),
            ConfigError::NodeMemProfileLen { nodes: 3, got: 1 }
        );
        // Zero entry.
        assert_eq!(
            PlatformConfig::builder()
                .nodes(2)
                .node_mem_profile(vec![1 << 30, 0])
                .build()
                .unwrap_err(),
            ConfigError::ZeroNodeMemProfileEntry { node: 1 }
        );
        // Cache must fit the smallest node.
        assert_eq!(
            PlatformConfig::builder()
                .nodes(2)
                .node_mem_profile(vec![1 << 20, 2 << 30])
                .read_path(RestoreReadConfig::cached(1 << 25))
                .build()
                .unwrap_err(),
            ConfigError::CacheExceedsNodeMem {
                cache_bytes: 1 << 25,
                node_mem_bytes: 1 << 20,
            }
        );
    }

    #[test]
    fn deploy_and_mixture_validation() {
        use medes_sim::SimTime;
        use medes_trace::VersionBump;
        let sched = DeploySchedule {
            bumps: vec![VersionBump {
                function: 0,
                at: SimTime::from_secs(10),
                version: 1,
            }],
        };
        let c = PlatformConfig::builder()
            .deploys(sched.clone())
            .build()
            .expect("valid deploy schedule");
        assert_eq!(c.deploys, sched);
        assert_eq!(
            PlatformConfig::builder()
                .deploys(DeploySchedule {
                    bumps: vec![VersionBump {
                        function: 0,
                        at: SimTime::from_secs(10),
                        version: 0,
                    }],
                })
                .build()
                .unwrap_err(),
            ConfigError::ZeroDeployVersion { bump: 0 }
        );
        assert_eq!(
            PlatformConfig::builder()
                .tweak(|c| {
                    c.content.mixture = medes_mem::ContentModelConfig::paper_calibrated();
                    c.content.mixture.heap.low_frac = 0.9;
                    c.content.mixture.heap.medium_frac = 0.5;
                })
                .build()
                .unwrap_err(),
            ConfigError::InvalidMixture
        );
    }
}
