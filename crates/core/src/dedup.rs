//! The dedup operation (§4.1, Fig 5).
//!
//! Steps, per the paper:
//! 1. checkpoint the warm sandbox (memory dump);
//! 2. scan each page, extract its value-sampled fingerprint;
//! 3. send fingerprints to the controller's registry for lookup;
//! 4. elect a **base page** per page — the candidate with the most
//!    duplicate sampled chunks, ties broken in favour of local pages;
//! 5. read the base pages (RDMA if remote) and compute an Xdelta-style
//!    patch; keep the patch only if it actually saves memory, otherwise
//!    keep the page verbatim.
//!
//! The result is a [`DedupPageTable`]: patches + verbatim pages, the
//! sandbox's entire residual footprint.

use crate::config::PlatformConfig;
use crate::ids::{FnId, NodeId, SandboxId};
use crate::registry::RegistryClient;
use crate::sandbox::{DedupPageTable, PageEntry};
use medes_delta::{encode_with, EncodeConfig, EncodeScratch};
use medes_hash::sample::pages_fingerprints;
use medes_mem::{MemoryImage, PAGE_SIZE};
use medes_net::{Fabric, NetError};
use medes_obs::{LabelSet, Obs, TraceCtx};
use medes_sim::{SimDuration, SimTime};
use std::collections::HashSet;
use std::sync::Arc;

/// Wall-time breakdown of one dedup op (background work).
#[derive(Debug, Clone, Copy, Default)]
pub struct DedupTiming {
    /// Sandbox memory checkpoint.
    pub checkpoint: SimDuration,
    /// Fingerprint transfer + registry lookup (the ~80 µs/page path).
    pub lookup: SimDuration,
    /// Reading base pages to diff against.
    pub base_read: SimDuration,
    /// Patch computation.
    pub patch_compute: SimDuration,
}

impl DedupTiming {
    /// Total dedup-op time.
    pub fn total(&self) -> SimDuration {
        self.checkpoint + self.lookup + self.base_read + self.patch_compute
    }

    /// The dedup op's context under `parent` — minted before the op
    /// runs (to parent fabric retry spans) and re-derived identically
    /// by [`DedupTiming::record`] afterwards.
    pub fn op_ctx(parent: TraceCtx) -> TraceCtx {
        parent.child("medes.dedup.op", 0)
    }

    /// Emits the per-phase spans (`medes.dedup.*`) for one dedup op
    /// that started at `start`, plus duration histograms and the
    /// `medes.ckpt` checkpoint metrics (`ckpt_paper_bytes` is the
    /// paper-scale dump size). Phases are laid end-to-end in execution
    /// order (checkpoint → fingerprint lookup → base read → patch
    /// compute), so span durations sum to [`DedupTiming::total`].
    ///
    /// `parent` is the causal context of the enclosing operation (a
    /// dedup trace root, or the batch span's context on the pipelined
    /// path); [`TraceCtx::NONE`] records a flat, untraced breakdown.
    ///
    /// `node` is the node being checkpointed — with dimensional
    /// telemetry on, the dedup counters/histograms gain per-node
    /// labeled twins.
    pub fn record(
        &self,
        obs: &Obs,
        start: SimTime,
        fn_name: &str,
        ckpt_paper_bytes: usize,
        parent: TraceCtx,
        node: usize,
    ) {
        if !obs.enabled() {
            return;
        }
        let op = Self::op_ctx(parent);
        let t1 = start + self.checkpoint;
        let t2 = t1 + self.lookup;
        let t3 = t2 + self.base_read;
        let t4 = t3 + self.patch_compute;
        let ckpt = op.child("medes.dedup.checkpoint", 0);
        obs.span_in("medes.dedup.checkpoint", start, ckpt).end(t1);
        obs.span_in("medes.dedup.lookup", t1, op.child("medes.dedup.lookup", 0))
            .end(t2);
        obs.span_in(
            "medes.dedup.base_read",
            t2,
            op.child("medes.dedup.base_read", 0),
        )
        .end(t3);
        obs.span_in("medes.dedup.patch", t3, op.child("medes.dedup.patch", 0))
            .end(t4);
        obs.span_in("medes.dedup.op", start, op)
            .attr("fn", fn_name.to_string())
            .end(t4);
        obs.incr("medes.dedup.ops");
        obs.record_us("medes.dedup.checkpoint_us", self.checkpoint);
        obs.record_us("medes.dedup.lookup_us", self.lookup);
        obs.record_us("medes.dedup.base_read_us", self.base_read);
        obs.record_us("medes.dedup.patch_us", self.patch_compute);
        obs.record_us("medes.dedup.op_us", self.total());
        let labels = || LabelSet::new().with("node", node);
        obs.incr_labeled("medes.dedup.ops", labels);
        obs.record_labeled(
            "medes.dedup.op_us",
            labels,
            self.total().as_micros(),
            Some(op.trace_id),
        );
        medes_ckpt::obs::record_checkpoint_in(
            obs,
            ckpt,
            start,
            ckpt_paper_bytes,
            self.checkpoint,
            node as u64,
        );
    }
}

/// Result of one dedup op.
#[derive(Debug)]
pub struct DedupOutcome {
    /// The residual representation.
    pub table: DedupPageTable,
    /// Timing breakdown.
    pub timing: DedupTiming,
    /// Pages deduplicated against a base page of the *same* function.
    pub same_fn_pages: usize,
    /// Pages deduplicated against a *different* function's base page.
    pub cross_fn_pages: usize,
    /// Distinct base sandboxes referenced (for refcounting).
    pub referenced_bases: Vec<SandboxId>,
}

impl DedupOutcome {
    /// Model-scale bytes saved versus keeping the image fully resident.
    pub fn saved_model_bytes(&self) -> usize {
        let full = self.table.entries.len() * PAGE_SIZE;
        full.saturating_sub(self.table.resident_model_bytes())
    }
}

/// Resolves a base sandbox id to its (pinned) image and owning function.
pub type BaseResolver<'a> = dyn Fn(SandboxId) -> Option<(Arc<MemoryImage>, FnId)> + 'a;

/// The pure compute phase of a dedup op: everything up to (but not
/// including) the fabric accounting. Produced by [`dedup_scan`],
/// consumed by [`dedup_commit`].
///
/// Holding no fabric or registry borrows, scans for different sandboxes
/// are independent — the parallel dedup pipeline computes them on a
/// worker pool, then commits each serially in first-enqueued order so
/// the fault-injection RNG stream (consumed per fabric op) is walked
/// identically at any worker count.
#[derive(Debug)]
pub struct DedupScan {
    /// The residual representation assembled by the scan.
    pub table: DedupPageTable,
    /// Pages deduplicated against a base page of the *same* function.
    pub same_fn_pages: usize,
    /// Pages deduplicated against a *different* function's base page.
    pub cross_fn_pages: usize,
    /// Distinct base sandboxes referenced, in first-seen order.
    pub referenced_bases: Vec<SandboxId>,
    /// Base-page reads to account on the fabric: (source node index,
    /// paper-scale bytes), in page order.
    pub remote_reads: Vec<(usize, usize)>,
    /// Pages that ended up patched (for patch-compute timing).
    pub patched_pages: usize,
    /// Model-scale image size in bytes (for checkpoint timing).
    pub image_model_bytes: usize,
    /// Model-scale page count (for lookup timing).
    pub image_pages: usize,
}

/// Runs the compute phase of the dedup op: per-page fingerprints, a
/// registry [`lookup_batch`](RegistryClient::lookup_batch)
/// (grouped by shard), base-page election, and patch encoding.
///
/// Takes the registry by `&self` and touches no fabric state, so any
/// number of scans may run concurrently on worker threads against the
/// same registry.
pub fn dedup_scan<F>(
    cfg: &PlatformConfig,
    registry: &RegistryClient,
    node: NodeId,
    func: FnId,
    image: &MemoryImage,
    bases: &F,
) -> DedupScan
where
    F: Fn(SandboxId) -> Option<(Arc<MemoryImage>, FnId)> + ?Sized,
{
    let mut entries = Vec::with_capacity(image.page_count());
    let mut patch_bytes = 0usize;
    let mut verbatim_pages = 0usize;
    let mut same_fn_pages = 0usize;
    let mut cross_fn_pages = 0usize;
    // First-seen order with a set membership test: `referenced_bases`
    // stays deterministic without the quadratic `Vec::contains` scan.
    let mut referenced: Vec<SandboxId> = Vec::new();
    let mut referenced_set: HashSet<SandboxId> = HashSet::new();
    let mut remote_reads: Vec<(usize, usize)> = Vec::new(); // (node, bytes)
                                                            // Under read coalescing, each distinct base page is read once per
                                                            // op no matter how many pages patch against it.
    let mut read_set: HashSet<(SandboxId, u32)> = HashSet::new();
    let mut patched_pages = 0usize;

    let encode_cfg = EncodeConfig::with_level(cfg.delta_level);
    let max_patch = (cfg.patch_max_frac * PAGE_SIZE as f64) as usize;

    // Fingerprint every page in one batch call (shared scan scratch),
    // then probe the registry in one batch so each shard's read lock
    // is taken once per op rather than once per page. Empty
    // fingerprints (rare) skip the registry exactly as the per-page
    // path did.
    let page_slices: Vec<&[u8]> = image.pages().map(|(_, page)| page).collect();
    let fps = pages_fingerprints(&page_slices, &cfg.fingerprint);
    let probe_fps: Vec<_> = fps.iter().filter(|fp| !fp.is_empty()).cloned().collect();
    let candidate_lists = registry.lookup_batch(&probe_fps);
    let mut probe_cursor = 0usize;
    // One encoder scratch per scan: the hash index and literal arenas
    // are reused across every candidate page of this image.
    let mut scratch = EncodeScratch::new();

    for ((_, page), fp) in image.pages().zip(&fps) {
        let entry = if fp.is_empty() {
            None
        } else {
            let candidates = &candidate_lists[probe_cursor];
            probe_cursor += 1;
            // Election: max votes, then prefer a local base page.
            let best = candidates.iter().max_by_key(|c| {
                (
                    c.votes,
                    c.loc.node == node,
                    std::cmp::Reverse(c.loc.sandbox),
                )
            });
            best.and_then(|cand| {
                let (base_img, base_fn) = bases(cand.loc.sandbox)?;
                let base_page = base_img.page(cand.loc.page as usize);
                let patch = encode_with(base_page, page, &encode_cfg, &mut scratch);
                let size = patch.serialized_size();
                if size >= max_patch {
                    return None; // not worth deduplicating
                }
                Some((cand.loc, base_fn, patch, size))
            })
        };
        match entry {
            Some((loc, base_fn, patch, size)) => {
                patch_bytes += size;
                patched_pages += 1;
                if base_fn == func {
                    same_fn_pages += 1;
                } else {
                    cross_fn_pages += 1;
                }
                if referenced_set.insert(loc.sandbox) {
                    referenced.push(loc.sandbox);
                }
                // Base page is read (possibly remotely) to compute the
                // patch; account paper-scale bytes on the fabric. With
                // coalescing, a page already read this op is diffed
                // against the local copy for free.
                if !cfg.read_path.coalesce || read_set.insert((loc.sandbox, loc.page)) {
                    remote_reads.push((loc.node.0, PAGE_SIZE * cfg.mem_scale));
                }
                entries.push(PageEntry::Patched {
                    base_sandbox: loc.sandbox,
                    base_node: loc.node,
                    base_page: loc.page,
                    patch,
                });
            }
            None => {
                verbatim_pages += 1;
                entries.push(PageEntry::Verbatim);
            }
        }
    }

    DedupScan {
        table: DedupPageTable {
            entries,
            patch_bytes,
            verbatim_pages,
        },
        same_fn_pages,
        cross_fn_pages,
        referenced_bases: referenced,
        remote_reads,
        patched_pages,
        image_model_bytes: image.total_bytes(),
        image_pages: image.page_count(),
    }
}

/// The serial commit phase of a dedup op: accounts the controller RPC
/// and base-page reads on the fabric (the only fault-injectable,
/// RNG-consuming steps) and assembles the final [`DedupOutcome`].
///
/// Fails only under fault injection, when the controller fingerprint
/// RPC or the base-page reads stay broken past the retry policy; the
/// caller then aborts the dedup and keeps the sandbox warm.
pub fn dedup_commit(
    cfg: &PlatformConfig,
    fabric: &mut Fabric,
    node: NodeId,
    scan: DedupScan,
) -> Result<DedupOutcome, NetError> {
    let scale = cfg.mem_scale as f64;
    let paper_pages = scan.image_pages as f64 * scale;
    let lookup_extra = fabric.controller_rpc_check(node.0, &cfg.retry)?;
    let base_read = fabric
        .rdma_read_batch_retry(node.0, &scan.remote_reads, &cfg.retry)?
        .time;
    let timing = DedupTiming {
        checkpoint: cfg
            .ckpt
            .checkpoint_time(cfg.to_paper_bytes(scan.image_model_bytes)),
        lookup: cfg.lookup_per_page.mul_f64(paper_pages) + lookup_extra,
        base_read,
        patch_compute: cfg
            .patch_compute_per_page
            .mul_f64(scan.patched_pages as f64 * scale),
    };

    Ok(DedupOutcome {
        table: scan.table,
        timing,
        same_fn_pages: scan.same_fn_pages,
        cross_fn_pages: scan.cross_fn_pages,
        referenced_bases: scan.referenced_bases,
    })
}

/// Runs the dedup op for one sandbox image: [`dedup_scan`] followed by
/// [`dedup_commit`].
///
/// `node` is the node hosting the sandbox; `func` its function. The
/// caller guarantees every candidate the registry returns resolves via
/// `bases` (the platform pins base images while referenced).
pub fn dedup_op<F>(
    cfg: &PlatformConfig,
    registry: &RegistryClient,
    fabric: &mut Fabric,
    node: NodeId,
    func: FnId,
    image: &MemoryImage,
    bases: &F,
) -> Result<DedupOutcome, NetError>
where
    F: Fn(SandboxId) -> Option<(Arc<MemoryImage>, FnId)> + ?Sized,
{
    let scan = dedup_scan(cfg, registry, node, func, image, bases);
    dedup_commit(cfg, fabric, node, scan)
}

/// Inserts every page of a base sandbox's image into the registry.
/// Returns the number of pages indexed.
pub fn index_base_sandbox(
    cfg: &PlatformConfig,
    registry: &RegistryClient,
    node: NodeId,
    sandbox: SandboxId,
    image: &MemoryImage,
) -> usize {
    let page_slices: Vec<&[u8]> = image.pages().map(|(_, page)| page).collect();
    let fps = pages_fingerprints(&page_slices, &cfg.fingerprint);
    for (idx, fp) in fps.iter().enumerate() {
        if !fp.is_empty() {
            registry.insert_page(
                fp,
                crate::registry::ChunkLoc {
                    node,
                    sandbox,
                    page: idx as u32,
                },
            );
        }
    }
    image.page_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::images::ImageFactory;
    use medes_mem::{AslrConfig, ContentModel};
    use medes_net::NetConfig;
    use medes_trace::functionbench_suite;

    fn setup() -> (PlatformConfig, ImageFactory, RegistryClient, Fabric) {
        let cfg = PlatformConfig::small_test();
        let factory = ImageFactory::new(
            &functionbench_suite()[..2],
            ContentModel::default(),
            AslrConfig::DISABLED,
            cfg.mem_scale,
        );
        let registry = RegistryClient::new();
        let fabric = Fabric::new(cfg.nodes, NetConfig::default());
        (cfg, factory, registry, fabric)
    }

    #[test]
    fn dedup_against_same_function_base_saves_most_memory() {
        let (cfg, mut factory, registry, mut fabric) = setup();
        let base_img = factory.pin(FnId(0), 100);
        index_base_sandbox(&cfg, &registry, NodeId(0), SandboxId(1), &base_img);

        let target = factory.image(FnId(0), 200);
        let base_arc = Arc::clone(&base_img);
        let outcome = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(1),
            FnId(0),
            &target,
            &move |id| (id == SandboxId(1)).then(|| (Arc::clone(&base_arc), FnId(0))),
        )
        .expect("dedup op");
        let total = target.total_bytes();
        let saved = outcome.saved_model_bytes();
        assert!(
            saved * 100 / total > 20,
            "expected >20% savings, got {}%",
            saved * 100 / total
        );
        assert!(outcome.same_fn_pages > 0);
        assert_eq!(outcome.referenced_bases, vec![SandboxId(1)]);
        assert!(outcome.timing.total() > SimDuration::ZERO);
    }

    #[test]
    fn referenced_bases_keep_first_seen_order() {
        // Two bases indexed; whatever subset the election picks, the
        // output order must equal the first appearance order in the
        // page table — the set-based membership test must not change it.
        let (cfg, mut factory, registry, mut fabric) = setup();
        let base0 = factory.pin(FnId(0), 100);
        let base1 = factory.pin(FnId(1), 100);
        index_base_sandbox(&cfg, &registry, NodeId(0), SandboxId(1), &base0);
        index_base_sandbox(&cfg, &registry, NodeId(2), SandboxId(2), &base1);
        let target = factory.image(FnId(0), 200);
        let b0 = Arc::clone(&base0);
        let b1 = Arc::clone(&base1);
        let resolver = move |id: SandboxId| match id {
            SandboxId(1) => Some((Arc::clone(&b0), FnId(0))),
            SandboxId(2) => Some((Arc::clone(&b1), FnId(1))),
            _ => None,
        };
        let outcome = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(1),
            FnId(0),
            &target,
            &resolver,
        )
        .expect("dedup op");
        let mut expect = Vec::new();
        for entry in &outcome.table.entries {
            if let PageEntry::Patched { base_sandbox, .. } = entry {
                if !expect.contains(base_sandbox) {
                    expect.push(*base_sandbox);
                }
            }
        }
        assert!(!expect.is_empty(), "something must dedup");
        assert_eq!(outcome.referenced_bases, expect);
    }

    #[test]
    fn coalescing_reduces_dedup_fabric_reads() {
        // Synthetic images: the target is six identical clones of base
        // page 2, so every patched page elects the SAME base page and
        // coalescing has duplicates to remove.
        let synth = |pages: usize, seed: u64| {
            let mut data = vec![0u8; pages * PAGE_SIZE];
            let mut s = seed | 1;
            for b in data.iter_mut() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (s >> 33) as u8;
            }
            MemoryImage::new(vec![medes_mem::region::Region {
                kind: medes_mem::region::RegionKind::Heap,
                name: "synth".into(),
                va_base: 0x7000_0000,
                data,
            }])
        };
        let mut cfg = PlatformConfig::small_test();
        let registry = RegistryClient::new();
        let mut fabric = Fabric::new(cfg.nodes, medes_net::NetConfig::default());
        let base = Arc::new(synth(4, 0xBA5E));
        index_base_sandbox(&cfg, &registry, NodeId(0), SandboxId(1), &base);
        let mut data = Vec::new();
        for _ in 0..6 {
            data.extend_from_slice(base.page(2));
        }
        let target = MemoryImage::new(vec![medes_mem::region::Region {
            kind: medes_mem::region::RegionKind::Heap,
            name: "synth".into(),
            va_base: 0x7100_0000,
            data,
        }]);
        let b = Arc::clone(&base);
        let resolver = move |id: SandboxId| (id == SandboxId(1)).then(|| (Arc::clone(&b), FnId(0)));

        let legacy = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(1),
            FnId(0),
            &target,
            &resolver,
        )
        .expect("dedup op");
        let legacy_reads = fabric.stats().rdma_reads;
        assert_eq!(legacy_reads as usize, legacy.table.patched_pages());

        cfg.read_path = crate::config::RestoreReadConfig::coalescing();
        let coalesced = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(1),
            FnId(0),
            &target,
            &resolver,
        )
        .expect("dedup op");
        let coalesced_reads = (fabric.stats().rdma_reads - legacy_reads) as usize;
        let distinct = coalesced.table.distinct_base_pages().len();
        assert_eq!(coalesced_reads, distinct);
        assert!(
            distinct < coalesced.table.patched_pages(),
            "duplicate base-page references must exist"
        );
        // The residual representation itself is unchanged — coalescing
        // only affects how many reads hit the fabric.
        assert_eq!(
            coalesced.table.patched_pages(),
            legacy.table.patched_pages()
        );
        assert_eq!(coalesced.table.patch_bytes, legacy.table.patch_bytes);
        assert!(coalesced.timing.base_read < legacy.timing.base_read);
    }

    #[test]
    fn empty_registry_keeps_everything_verbatim() {
        let (cfg, factory, registry, mut fabric) = setup();
        let target = factory.image(FnId(0), 1);
        let outcome = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(0),
            FnId(0),
            &target,
            &|_| None,
        )
        .expect("dedup op");
        assert_eq!(outcome.table.verbatim_pages, target.page_count());
        assert_eq!(outcome.saved_model_bytes(), 0);
        assert_eq!(outcome.table.patch_bytes, 0);
    }

    #[test]
    fn cross_function_dedup_happens_via_shared_content() {
        let (cfg, mut factory, registry, mut fabric) = setup();
        // Base sandbox runs function 1; dedup a function-0 sandbox.
        let base_img = factory.pin(FnId(1), 50);
        index_base_sandbox(&cfg, &registry, NodeId(2), SandboxId(7), &base_img);
        let target = factory.image(FnId(0), 60);
        let base_arc = Arc::clone(&base_img);
        let outcome = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(0),
            FnId(0),
            &target,
            &move |id| (id == SandboxId(7)).then(|| (Arc::clone(&base_arc), FnId(1))),
        )
        .expect("dedup op");
        assert!(
            outcome.cross_fn_pages > 0,
            "runtime/pattern pages must dedup across functions"
        );
        assert_eq!(outcome.same_fn_pages, 0);
    }

    #[test]
    fn timing_scales_with_image_size() {
        let (cfg, mut factory, registry, mut fabric) = setup();
        let base0 = factory.pin(FnId(0), 1);
        let base1 = factory.pin(FnId(1), 1);
        index_base_sandbox(&cfg, &registry, NodeId(0), SandboxId(1), &base0);
        index_base_sandbox(&cfg, &registry, NodeId(0), SandboxId(2), &base1);
        let small = factory.image(FnId(0), 2); // Vanilla 17MB
        let large = factory.image(FnId(1), 2); // LinAlg 32MB
        let b0 = Arc::clone(&base0);
        let b1 = Arc::clone(&base1);
        let resolver = move |id: SandboxId| match id {
            SandboxId(1) => Some((Arc::clone(&b0), FnId(0))),
            SandboxId(2) => Some((Arc::clone(&b1), FnId(1))),
            _ => None,
        };
        let o_small = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(0),
            FnId(0),
            &small,
            &resolver,
        )
        .expect("dedup op");
        let o_large = dedup_op(
            &cfg,
            &registry,
            &mut fabric,
            NodeId(0),
            FnId(1),
            &large,
            &resolver,
        )
        .expect("dedup op");
        assert!(o_large.timing.lookup > o_small.timing.lookup);
        assert!(o_large.timing.total() > o_small.timing.total());
        // The paper reports ~2s (Vanilla) to ~3.3s (ModelTrain): with
        // the 80µs/page model a 17MB fn is ~0.3s+ of lookups alone.
        assert!(o_small.timing.total() > SimDuration::from_millis(100));
    }
}
